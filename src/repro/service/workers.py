"""Multi-process scale-out: epoch-replicated mining workers.

The GIL caps the single-process server at roughly one core no matter how
many threads the pool holds — BENCH_serve.json before this layer records
16 concurrent clients getting *half* the throughput of one.  The fix is
the classic replicated-read topology: the asyncio front door becomes a
**router**, and mining runs in N worker *processes*, each holding a full
replica of the dictionary-encoded KB rehydrated once from
:mod:`repro.kb.wire` bytes (no N-Triples/HDT re-parse, same dense term
IDs, same epoch).

Consistency protocol (epoch lock-step):

* every replica starts from the router KB's wire image, so router and
  replicas share the epoch counter's *meaning*: one applied single-op
  update bumps each copy by exactly one;
* queries (``mine``/``describe``) dispatch to any live replica — least
  in-flight first — and the reply carries the replica's epoch back as
  telemetry;
* updates are applied to the router's authoritative KB first (under the
  server's update barrier), then **fanned to every replica**, which
  replays the same envelope through its own façade and rolls its own
  MVCC snapshot session, exactly as the in-process server does;
* after the fan-out the router compares every ack epoch against its own.
  A replica that diverged (crashed mid-apply, missed a delta) is
  **resynced** wholesale from fresh wire bytes — the barrier guarantees
  the KB is quiescent, so the image is exact — and the event is counted
  in :attr:`WorkerPool.resyncs` (a healthy run reports zero).

Failure detection is bounded-time, not best-effort: every dispatch round
carries a **request deadline** (:attr:`WorkerPool.request_timeout`).  A
replica that *hangs* instead of crashing — the pipe stays open but no
reply ever comes — trips the deadline, raises a typed
:class:`WorkerTimeout` (the server turns it into a structured error
envelope; the client never hangs), and the wedged process is terminated
on the spot.  Dead and wedged slots are then *respawned* by the
:class:`~repro.service.supervisor.FleetSupervisor` through the
:meth:`prepare_bootstrap` → :meth:`respawn` → :meth:`admit` cycle, the
last step running under the server's update barrier so the fresh replica
re-enters dispatch at the router's exact epoch.

Each replica owns one duplex :func:`multiprocessing.Pipe`; the parent
side serializes access per replica with a thread lock and runs the
blocking send/recv round on a small dedicated thread pool, so the
asyncio loop never blocks.  Workers are ``spawn``\\ ed, not forked: the
router is a threaded asyncio process, and a fork would duplicate its
locks mid-flight — spawn also forces the wire path, which is the point.

Deterministic chaos: a :class:`~repro.service.faults.FaultPlan` threads
through the pool (parent-side wire corruption) and into every spawned
worker (kill/hang/drop/delay/die-mid-update points in the message loop),
so each recovery path above is pinned by a replayable test instead of
hoped-for.

The pool does not own the router's KB and never mutates it; the caller
that created the pool stops it (:meth:`WorkerPool.stop`).
"""

from __future__ import annotations

import asyncio
import multiprocessing
import os
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from multiprocessing import connection as _mp_connection
from typing import Dict, List, Optional

from repro.service.config import ServiceConfig
from repro.service.faults import (
    DELAY_RESPONSE,
    DIE_MID_UPDATE,
    DROP_RESPONSE,
    FAULT_EXIT_CODE,
    FaultPlan,
    HANG_MID_REQUEST,
    KILL_BEFORE_READY,
    KILL_MID_REQUEST,
)

#: Fork would clone the router's threads' locks in unknown states; spawn
#: gives each worker a clean interpreter that imports this module fresh.
_SPAWN = multiprocessing.get_context("spawn")

#: Pipe failures that mean "this replica is gone", not "bad request".
_PIPE_ERRORS = (EOFError, BrokenPipeError, ConnectionError, OSError)


class WorkerPoolError(RuntimeError):
    """The pool cannot serve: no live replicas, or not started."""


class WorkerTimeout(WorkerPoolError):
    """A replica failed to answer within the request deadline.

    The wedged process has already been terminated and its slot marked
    dead when this raises; the supervisor respawns it.  The server maps
    this onto a structured ``timeout`` error envelope — the client sees
    a typed failure, never a hung connection.
    """

    def __init__(self, worker: int, deadline: float):
        super().__init__(
            f"worker {worker} exceeded the {deadline:g}s request deadline"
        )
        self.worker = worker
        self.deadline = deadline


def _is_update_payload(payload) -> bool:
    """Worker-side mirror of the envelope dispatch: is this an update?"""
    return isinstance(payload, dict) and (
        payload.get("type") == "update"
        or (payload.get("type") is None and "op" in payload)
    )


def _worker_main(
    conn, bootstrap: Dict, config_json: Dict, worker_id: int, warm: bool,
    faults_json: Optional[Dict] = None,
) -> None:
    """A worker process: one KB replica behind one message loop.

    Runs in the spawned child.  Builds its replica from the *bootstrap*
    descriptor — either ``{"kind": "wire", "data": bytes}`` rehydrated
    into a live :class:`~repro.kb.interned.InternedKnowledgeBase`, or
    ``{"kind": "image", "path": str}`` mmap-opened as an
    :class:`~repro.kb.image.ImageKnowledgeBase` (the page cache is shared
    across the fleet, so N replicas cost one copy of the cold data) —
    fronts it with its own :class:`~repro.service.facade.MiningService`
    in MVCC snapshot mode (reads pin epoch sessions; replayed updates
    roll the session — the same discipline as the in-process server),
    then answers framed messages until told to stop or the pipe dies.

    *faults_json* rebuilds this worker's own
    :class:`~repro.service.faults.FaultPlan` (occurrence counters local
    to this process), whose scheduled rules fire at the named points of
    the loop below.
    """
    from repro.service.facade import MiningService

    plan = FaultPlan.from_json(faults_json) if faults_json else None

    def fires(point: str):
        return plan.fire(point, worker=worker_id) if plan is not None else None

    def build(descriptor: Dict):
        if descriptor["kind"] == "image":
            from repro.kb.image import ImageKnowledgeBase

            kb = ImageKnowledgeBase(descriptor["path"])
        else:
            from repro.kb.wire import kb_from_bytes

            kb = kb_from_bytes(descriptor["data"])
        service = MiningService(kb, ServiceConfig.from_json(config_json))
        service.enable_snapshots()
        if warm:
            service.warm_up()
        return kb, service

    kb, service = build(bootstrap)
    requests = 0
    if fires(KILL_BEFORE_READY) is not None:
        os._exit(FAULT_EXIT_CODE)
    conn.send(
        {"kind": "ready", "worker": worker_id, "pid": os.getpid(), "epoch": kb.epoch}
    )
    while True:
        try:
            message = conn.recv()
        except _PIPE_ERRORS:
            break
        kind = message.get("kind")
        if kind == "stop":
            conn.send(
                {
                    "kind": "stopped",
                    "worker": worker_id,
                    "epoch": kb.epoch,
                    "requests": requests,
                }
            )
            break
        if kind == "request":
            payload = message["payload"]
            if fires(KILL_MID_REQUEST) is not None:
                os._exit(FAULT_EXIT_CODE)
            hang = fires(HANG_MID_REQUEST)
            if hang is not None:
                # A wedge, not a crash: the process stays alive and
                # silent until the router's deadline expires and kills
                # it (or the sleep runs out, whichever first).
                time.sleep(hang.delay)
            record = service.handle_json(payload, line=message.get("line"))
            requests += 1
            if _is_update_payload(payload) and fires(DIE_MID_UPDATE) is not None:
                # Applied, never acked: the fan-out sees a corpse and the
                # respawned replica must come back at the router's epoch.
                os._exit(FAULT_EXIT_CODE)
            if fires(DROP_RESPONSE) is not None:
                continue  # swallow the reply; the deadline reports it
            delay = fires(DELAY_RESPONSE)
            if delay is not None:
                time.sleep(delay.delay)
            conn.send(
                {
                    "kind": "response",
                    "worker": worker_id,
                    "epoch": kb.epoch,
                    "requests": requests,
                    "record": record,
                }
            )
        elif kind == "load":
            # Full resync: replace the replica wholesale (divergence
            # recovery; the router serialized a quiescent KB).  Always
            # wire — a diverged image replica's file no longer matches
            # the router's mutated epoch.  A frame that does not
            # rehydrate (corrupt bytes) is a typed error ack, never a
            # half-loaded replica: the old KB stays in place and the
            # router decides (it marks this replica dead).
            try:
                kb, service = build({"kind": "wire", "data": message["wire"]})
            except Exception as exc:  # noqa: BLE001 — report, don't die
                conn.send(
                    {
                        "kind": "error",
                        "worker": worker_id,
                        "epoch": kb.epoch,
                        "reason": f"resync failed: {type(exc).__name__}: {exc}",
                    }
                )
                continue
            conn.send({"kind": "loaded", "worker": worker_id, "epoch": kb.epoch})
        elif kind == "ping":
            # drop/delay model *pipe message* loss, so they cover pong
            # replies too — that is how a heartbeat exposes a replica
            # that is alive but no longer answering.
            if fires(DROP_RESPONSE) is not None:
                continue
            delay = fires(DELAY_RESPONSE)
            if delay is not None:
                time.sleep(delay.delay)
            conn.send(
                {
                    "kind": "pong",
                    "worker": worker_id,
                    "epoch": kb.epoch,
                    "requests": requests,
                }
            )
        else:
            conn.send(
                {
                    "kind": "error",
                    "worker": worker_id,
                    "epoch": kb.epoch,
                    "reason": f"unknown message kind {kind!r}",
                }
            )
    conn.close()


class _Replica:
    """Parent-side handle of one worker process."""

    __slots__ = (
        "index",
        "process",
        "conn",
        "lock",
        "alive",
        "pid",
        "epoch",
        "requests",
        "in_flight",
    )

    def __init__(self, index: int, process, conn):
        self.index = index
        self.process = process
        self.conn = conn
        #: Serializes the pipe: strictly one in-flight round per replica,
        #: so every recv is the reply to this thread's send.
        self.lock = threading.Lock()
        self.alive = True
        self.pid: Optional[int] = None
        self.epoch = 0
        #: Last-acked replica epoch and lifetime requests, as seen by the
        #: router (refreshed on every reply — the stats surface).
        self.requests = 0
        self.in_flight = 0


class WorkerPool:
    """N spawned KB replicas behind an async dispatch/fan-out surface.

    Parameters
    ----------
    kb:
        The router's authoritative dictionary-encoded KB; its wire image
        seeds every replica.
    config:
        The :class:`~repro.service.ServiceConfig` each replica builds its
        façade from (defaults match the router's service).
    count:
        Number of worker processes (≥ 1).
    warm_up:
        Build each replica's mining substrate before it reports ready.
    start_timeout:
        Seconds the whole fleet gets to complete its ready handshakes —
        one shared deadline, not per replica (a worker that dies during
        spawn fails the startup immediately with its exit code).
    image_path:
        Explicit KB image file to bootstrap replicas from instead of
        shipping wire bytes.  When omitted, the pool bootstraps from
        ``kb.image_path`` automatically whenever the router KB is an
        unmutated image backend (``kb.epoch == kb.image_epoch`` — epochs
        only ever grow, so equality proves the file is still exact).
    request_timeout:
        Per-round deadline in seconds; a replica that does not answer in
        time raises :class:`WorkerTimeout` and is terminated (``None``
        inherits ``config.request_timeout``; ``0`` disables deadlines).
    faults:
        A :class:`~repro.service.faults.FaultPlan` for deterministic
        chaos testing: parent-side points fire on this instance, and
        every spawned worker rebuilds its own copy from JSON.
    """

    def __init__(
        self,
        kb,
        config: Optional[ServiceConfig] = None,
        count: int = 2,
        warm_up: bool = False,
        start_timeout: float = 120.0,
        image_path: Optional[str] = None,
        request_timeout: Optional[float] = None,
        faults: Optional[FaultPlan] = None,
    ):
        if count < 1:
            raise ValueError(f"worker count must be ≥ 1, got {count}")
        if not getattr(kb, "supports_id_queries", False):
            raise WorkerPoolError(
                "multi-process serving needs a dictionary-encoded backend "
                f"(wire serialization), got {type(kb).__name__}"
            )
        self.kb = kb
        self.config = config or ServiceConfig()
        self.count = count
        self.warm_up = warm_up
        self.start_timeout = start_timeout
        self.image_path = str(image_path) if image_path is not None else None
        timeout = (
            self.config.request_timeout if request_timeout is None else request_timeout
        )
        #: Effective per-round deadline (``None`` = unbounded).
        self.request_timeout: Optional[float] = (
            timeout if timeout is not None and timeout > 0 else None
        )
        #: The active chaos plan (swappable between respawns by tests).
        self.faults = faults
        #: How replicas were seeded ("image" or "wire"); set by start().
        self.bootstrap_kind: Optional[str] = None
        #: The attached :class:`~repro.service.supervisor.FleetSupervisor`
        #: (set by the supervisor itself; ``None`` = fail-soft only).
        self.supervisor = None
        self._replicas: List[_Replica] = []
        self._executor: Optional[ThreadPoolExecutor] = None
        self._started = False
        self._stopped = False
        self._start_epoch: Optional[int] = None
        #: Fan-out/failure telemetry (the stats envelope's fleet view).
        self.updates_fanned = 0
        self.resyncs = 0
        self.requests_dispatched = 0
        self.timeouts = 0
        self.retries = 0
        self.restarts = 0
        self.last_fanout_lag_seconds = 0.0
        self.max_fanout_lag_seconds = 0.0

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    def _faults_json(self) -> Optional[Dict]:
        return self.faults.to_json() if self.faults is not None else None

    def prepare_bootstrap(self) -> Dict:
        """The descriptor a replica builds from (image beats wire).

        An image bootstrap ships a path, not the KB: each spawned child
        mmaps the same file and the OS shares the pages, so per-replica
        RSS stays flat where wire rehydration pays the full store per
        process.  Safe only while the file is exact, i.e. while the
        router's epoch still equals the epoch the image (or the pool)
        started at — after any mutation, respawns fall back to fresh
        wire bytes.  **The KB must be quiescent for the duration** (the
        startup path runs before traffic; the supervisor calls this
        under the server's update barrier).
        """
        if self.image_path is not None and (
            self._start_epoch is None or self.kb.epoch == self._start_epoch
        ):
            self.bootstrap_kind = "image"
            return {"kind": "image", "path": self.image_path}
        path = getattr(self.kb, "image_path", None)
        if path is not None and self.kb.epoch == getattr(self.kb, "image_epoch", None):
            self.bootstrap_kind = "image"
            return {"kind": "image", "path": str(path)}
        from repro.kb.wire import kb_to_bytes

        self.bootstrap_kind = "wire"
        return {"kind": "wire", "data": kb_to_bytes(self.kb, faults=self.faults)}

    def _spawn(self, index: int, bootstrap: Dict) -> _Replica:
        """Start one worker process; the ready handshake is the caller's."""
        parent_conn, child_conn = _SPAWN.Pipe()
        process = _SPAWN.Process(
            target=_worker_main,
            args=(
                child_conn,
                bootstrap,
                self.config.to_json(),
                index,
                self.warm_up,
                self._faults_json(),
            ),
            name=f"remi-worker-{index}",
            daemon=True,
        )
        process.start()
        child_conn.close()
        return _Replica(index, process, parent_conn)

    def _finish_handshake(self, replica: _Replica) -> None:
        """Consume one ready message (the conn must be readable)."""
        try:
            message = replica.conn.recv()
        except _PIPE_ERRORS as exc:
            replica.process.join(timeout=1.0)
            raise WorkerPoolError(
                f"worker {replica.index} died during startup "
                f"(exit code {replica.process.exitcode})"
            ) from exc
        if message.get("kind") != "ready":
            raise WorkerPoolError(
                f"worker {replica.index} sent {message!r} instead of ready"
            )
        replica.pid = message.get("pid")
        replica.epoch = message.get("epoch", 0)

    def start(self) -> None:
        """Spawn the replicas and wait for every ready handshake.

        Idempotent; blocking (call before the event loop runs, or via an
        executor).  The wait runs against one **shared** deadline across
        the whole fleet (``start_timeout``), polling every pipe at once;
        a worker that dies mid-spawn fails the startup immediately with
        its exit code instead of burning the rest of the deadline.
        Raises :class:`WorkerPoolError` on any failure — a half-started
        pool is stopped before the raise.
        """
        if self._started:
            return
        self._start_epoch = self.kb.epoch
        bootstrap = self.prepare_bootstrap()
        try:
            for index in range(self.count):
                self._replicas.append(self._spawn(index, bootstrap))
            deadline = time.monotonic() + self.start_timeout
            pending = {replica.conn: replica for replica in self._replicas}
            while pending:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    waiting = sorted(r.index for r in pending.values())
                    raise WorkerPoolError(
                        f"workers {waiting} did not report ready within the "
                        f"shared {self.start_timeout}s startup deadline"
                    )
                ready = _mp_connection.wait(
                    list(pending), timeout=min(remaining, 0.25)
                )
                if not ready:
                    # Nothing readable yet: fail fast on any corpse
                    # instead of waiting out the deadline (a crashed
                    # child's pipe also turns readable-at-EOF, but
                    # checking liveness here catches it one tick sooner
                    # and is what bounds a spawn-time crash loop).
                    for replica in pending.values():
                        if not replica.process.is_alive():
                            raise WorkerPoolError(
                                f"worker {replica.index} died during startup "
                                f"(exit code {replica.process.exitcode})"
                            )
                    continue
                for conn in ready:
                    replica = pending.pop(conn)
                    self._finish_handshake(replica)
                    if replica.epoch != self.kb.epoch:
                        raise WorkerPoolError(
                            f"worker {replica.index} rehydrated at epoch "
                            f"{replica.epoch}, router is at {self.kb.epoch}"
                        )
        except BaseException:
            self._started = True  # let stop() tear down what spawned
            self.stop()
            raise
        self._executor = ThreadPoolExecutor(
            max_workers=max(4, 2 * self.count), thread_name_prefix="remi-fanout"
        )
        self._started = True

    @staticmethod
    def _reap(process, graceful: float = 0.0) -> None:
        """terminate → kill → join: never leaves a live child behind.

        *graceful* first waits for a voluntary exit (the stop-ack path);
        SIGTERM follows, and a worker that ignores or blocks it (wedged
        in native code) is escalated to SIGKILL.
        """
        if graceful and process.is_alive():
            process.join(timeout=graceful)
        if process.is_alive():
            process.terminate()
            process.join(timeout=5.0)
        if process.is_alive():
            process.kill()
            process.join(timeout=5.0)

    def stop(self) -> None:
        """Stop every replica and reap the processes.  Idempotent.

        Escalates per replica: polite stop message (bounded lock/ack
        waits so a wedged replica cannot stall the shutdown), then
        terminate, then kill — ``stop()`` never leaves a live child.
        """
        if self._stopped:
            return
        self._stopped = True
        for replica in self._replicas:
            graceful = 0.0
            if replica.alive:
                acquired = replica.lock.acquire(timeout=5.0)
                if acquired:
                    try:
                        replica.conn.send({"kind": "stop"})
                        if replica.conn.poll(5.0):
                            ack = replica.conn.recv()
                            if ack.get("kind") == "stopped":
                                replica.epoch = ack.get("epoch", replica.epoch)
                                replica.requests = ack.get(
                                    "requests", replica.requests
                                )
                                graceful = 10.0
                    except _PIPE_ERRORS:
                        pass
                    finally:
                        replica.lock.release()
            replica.alive = False
            try:
                replica.conn.close()
            except OSError:
                pass
            self._reap(replica.process, graceful=graceful)
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None

    def __enter__(self) -> "WorkerPool":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # ------------------------------------------------------------------
    # supervision (respawn cycle; see repro.service.supervisor)
    # ------------------------------------------------------------------

    def respawn(self, index: int, bootstrap: Optional[Dict] = None) -> None:
        """Spawn a fresh process into dead slot *index* (blocking; the
        supervisor runs this on the executor).

        The new replica completes its ready handshake but is **not** yet
        in dispatch — :meth:`admit` (under the server's update barrier)
        brings it to the router's exact epoch and marks it live.  Pass a
        *bootstrap* prepared under the barrier (quiescent KB); omitting
        it serializes one here, which is only safe while no update can
        run concurrently.
        """
        self._require_started()
        old = self._replicas[index]
        if old.alive:
            raise WorkerPoolError(f"worker {index} is alive; refusing to respawn")
        try:
            old.conn.close()
        except OSError:
            pass
        self._reap(old.process)
        if bootstrap is None:
            bootstrap = self.prepare_bootstrap()
        replica = self._spawn(index, bootstrap)
        replica.alive = False
        deadline = time.monotonic() + self.start_timeout
        try:
            while not replica.conn.poll(0.25):
                if not replica.process.is_alive():
                    raise WorkerPoolError(
                        f"worker {index} died during respawn "
                        f"(exit code {replica.process.exitcode})"
                    )
                if time.monotonic() > deadline:
                    raise WorkerPoolError(
                        f"worker {index} did not report ready within "
                        f"{self.start_timeout}s of respawn"
                    )
            self._finish_handshake(replica)
        except BaseException:
            try:
                replica.conn.close()
            except OSError:
                pass
            self._reap(replica.process)
            raise
        self._replicas[index] = replica

    def admit(self, index: int) -> None:
        """Bring a respawned replica to the router's exact epoch and put
        it back into dispatch.

        Blocking; **must run under the server's update barrier** — the
        epoch comparison and any resync image are only exact while the
        KB is quiescent, and admission must not interleave with an
        update fan-out (a replica admitted mid-fan-out would miss the
        very update being broadcast).
        """
        replica = self._replicas[index]
        if replica.alive:
            return
        if replica.epoch != self.kb.epoch:
            from repro.kb.wire import kb_to_bytes

            self.resyncs += 1
            wire = kb_to_bytes(self.kb, faults=self.faults)
            reply = self._roundtrip(replica, {"kind": "load", "wire": wire})
            if reply.get("kind") != "loaded":
                self._mark_dead(replica)
                raise WorkerPoolError(
                    f"worker {index} failed its post-respawn resync: "
                    f"{reply.get('reason', reply)!r}"
                )
            replica.epoch = reply.get("epoch", replica.epoch)
            if replica.epoch != self.kb.epoch:
                self._mark_dead(replica)
                raise WorkerPoolError(
                    f"worker {index} resynced to epoch {replica.epoch}, "
                    f"router is at {self.kb.epoch}"
                )
        replica.alive = True
        self.restarts += 1

    # ------------------------------------------------------------------
    # dispatch
    # ------------------------------------------------------------------

    @property
    def live_count(self) -> int:
        return sum(1 for r in self._replicas if r.alive)

    def _require_started(self) -> None:
        if not self._started or self._stopped:
            raise WorkerPoolError("worker pool is not running")

    def _pick(self, worker: Optional[int]) -> _Replica:
        if worker is not None:
            replica = self._replicas[worker]
            if not replica.alive:
                raise WorkerPoolError(f"worker {worker} is dead")
            return replica
        live = [r for r in self._replicas if r.alive]
        if not live:
            raise WorkerPoolError("no live workers")
        return min(live, key=lambda r: (r.in_flight, r.index))

    def _roundtrip(
        self, replica: _Replica, message: Dict, timeout: Optional[float] = None
    ) -> Dict:
        """One framed send/recv on *replica*'s pipe (blocking; executor).

        Enforces the request deadline: a reply that does not arrive in
        time means the replica is wedged — it is marked dead and its
        process terminated *before* :class:`WorkerTimeout` raises, both
        because a wedged worker must not hold a core and because a late
        reply landing on a reused pipe would desynchronize the framing
        (every recv must answer this thread's send).
        """
        deadline = self.request_timeout if timeout is None else timeout
        with replica.lock:
            replica.conn.send(message)
            if deadline is not None and not replica.conn.poll(deadline):
                self.timeouts += 1
                self._mark_dead(replica)
                self._reap(replica.process)
                raise WorkerTimeout(replica.index, deadline)
            return replica.conn.recv()

    def _mark_dead(self, replica: _Replica) -> None:
        replica.alive = False
        try:
            replica.conn.close()
        except OSError:
            pass

    async def _round(
        self, replica: _Replica, message: Dict, timeout: Optional[float] = None
    ) -> Dict:
        """Run one round on the fan-out executor; marks dead on pipe loss."""
        loop = asyncio.get_running_loop()
        replica.in_flight += 1
        try:
            reply = await loop.run_in_executor(
                self._executor, self._roundtrip, replica, message, timeout
            )
        except WorkerTimeout:
            raise  # _roundtrip already marked dead + reaped the process
        except _PIPE_ERRORS as exc:
            self._mark_dead(replica)
            raise WorkerPoolError(
                f"worker {replica.index} died mid-request: {exc!r}"
            ) from exc
        finally:
            replica.in_flight -= 1
        replica.epoch = reply.get("epoch", replica.epoch)
        replica.requests = reply.get("requests", replica.requests + 1)
        return reply

    async def request(self, payload, line: Optional[int] = None, worker: Optional[int] = None) -> Dict:
        """Answer one query envelope on a replica; returns the envelope dict.

        Dispatches least-in-flight-first (or to the pinned *worker* —
        the differential tests interrogate specific replicas).  A replica
        dying mid-request is retried once on another — the retry is
        **counted** (:attr:`retries`) and, when every attempt fails, the
        raised :class:`WorkerPoolError` names the dead workers so
        operators can correlate with supervisor restarts.  A
        :class:`WorkerTimeout` is never retried: the deadline is the
        client-visible latency contract, and a second full deadline on
        another replica would break it — the typed error surfaces
        instead.
        """
        self._require_started()
        message = {"kind": "request", "payload": payload, "line": line}
        failed: List[int] = []
        for attempt in (0, 1):
            replica = self._pick(worker)
            try:
                reply = await self._round(replica, message)
            except WorkerTimeout:
                raise
            except WorkerPoolError as exc:
                failed.append(replica.index)
                if worker is not None or attempt or not self.live_count:
                    raise WorkerPoolError(
                        f"request failed on worker{'s' if len(failed) > 1 else ''} "
                        f"{failed}: {exc}"
                    ) from exc
                self.retries += 1
                continue
            self.requests_dispatched += 1
            return reply["record"]
        raise WorkerPoolError(  # pragma: no cover — the loop always raises
            f"no live workers (failed on {failed})"
        )

    async def broadcast_update(
        self, payload, line: Optional[int] = None, expect_epoch: Optional[int] = None
    ) -> List[Dict]:
        """Replay one applied update envelope on EVERY live replica.

        Must run under the server's update barrier (the router KB — and
        therefore the expected epoch — is frozen while replicas apply).
        Waits for all acks, records the fan-out lag, then verifies each
        replica landed on *expect_epoch*; a mismatch triggers a full wire
        resync of that replica so drift never outlives the update that
        caused it.  A replica that crashes or wedges mid-fan-out is
        marked dead (and, when wedged, terminated) — the supervisor
        respawns it at the post-update epoch.
        """
        self._require_started()
        message = {"kind": "request", "payload": payload, "line": line}
        live = [r for r in self._replicas if r.alive]
        if not live:
            raise WorkerPoolError("no live workers")
        started = time.perf_counter()
        results = await asyncio.gather(
            *(self._round(replica, message) for replica in live),
            return_exceptions=True,
        )
        lag = time.perf_counter() - started
        self.updates_fanned += 1
        self.last_fanout_lag_seconds = lag
        if lag > self.max_fanout_lag_seconds:
            self.max_fanout_lag_seconds = lag
        acks: List[Dict] = []
        for replica, result in zip(live, results):
            if isinstance(result, BaseException):
                continue  # _round already marked it dead
            acks.append(result["record"])
            if expect_epoch is not None and replica.epoch != expect_epoch:
                await self._resync(replica, expect_epoch)
        return acks

    async def _resync(self, replica: _Replica, expect_epoch: int) -> None:
        """Reload *replica* from a fresh wire image of the router KB."""
        from repro.kb.wire import kb_to_bytes

        self.resyncs += 1
        wire = kb_to_bytes(self.kb, faults=self.faults)
        try:
            reply = await self._round(replica, {"kind": "load", "wire": wire})
        except WorkerPoolError:
            return  # dead slot; the supervisor respawns it
        if reply.get("kind") != "loaded" or replica.epoch != expect_epoch:
            self._mark_dead(replica)

    async def ping(self) -> List[Dict]:
        """Refresh every live replica's epoch/requests telemetry."""
        self._require_started()
        live = [r for r in self._replicas if r.alive]
        results = await asyncio.gather(
            *(self._round(replica, {"kind": "ping"}) for replica in live),
            return_exceptions=True,
        )
        return [r for r in results if not isinstance(r, BaseException)]

    # ------------------------------------------------------------------
    # telemetry
    # ------------------------------------------------------------------

    def stats(self) -> Dict:
        """The fleet view surfaced in the stats envelope and the
        shutdown summary: replica drift plus the failure/recovery
        counters (timeouts, counted retries, supervisor restarts and
        given-up slots)."""
        supervisor = self.supervisor
        record = {
            "count": self.count,
            "alive": self.live_count,
            "bootstrap": self.bootstrap_kind,
            "requests_dispatched": self.requests_dispatched,
            "updates_fanned": self.updates_fanned,
            "resyncs": self.resyncs,
            "timeouts": self.timeouts,
            "retries": self.retries,
            "restarts": self.restarts,
            "degraded": sorted(supervisor.degraded) if supervisor is not None else [],
            "supervised": supervisor is not None,
            "last_fanout_lag_seconds": round(self.last_fanout_lag_seconds, 6),
            "max_fanout_lag_seconds": round(self.max_fanout_lag_seconds, 6),
            "per_worker": [
                {
                    "worker": r.index,
                    "pid": r.pid,
                    "alive": r.alive,
                    "epoch": r.epoch,
                    "requests": r.requests,
                    "in_flight": r.in_flight,
                }
                for r in self._replicas
            ],
        }
        if supervisor is not None:
            record["supervisor"] = supervisor.stats()
        return record

    def __repr__(self) -> str:
        return (
            f"WorkerPool(count={self.count}, alive={self.live_count}, "
            f"epoch={self.kb.epoch})"
        )


__all__ = ["WorkerPool", "WorkerPoolError", "WorkerTimeout"]
