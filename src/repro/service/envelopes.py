"""Typed request/response envelopes: the wire vocabulary of the service.

Every way into the miner — ``remi mine --json``, ``remi serve``, the
:class:`~repro.service.facade.MiningService` façade — speaks the same
four request types and returns the same versioned :class:`Response`:

* :class:`MineRequest` — mine the Ĉ-minimal RE for a target set;
* :class:`DescribeRequest` — mine and return only the NL verbalization;
* :class:`UpdateRequest` — mutate the resident KB (``add``/``delete``);
* :class:`StatsRequest` — KB statistics plus serving telemetry.

On the wire a request is one JSON object with a ``type`` field::

    {"type": "mine", "id": "q1", "targets": ["http://ex.org/Rennes"], "verbalize": true}
    {"type": "update", "op": "add", "triple": ["s", "p", "o"]}
    {"type": "stats"}

For continuity with the ``remi batch`` JSONL protocol the ``type`` field
may be omitted: a bare list or an object with ``targets`` parses as a
mine request, an object with ``op`` as an update — so an existing batch
request file replays against ``remi serve`` unchanged.

Responses are versioned envelopes with uniform error objects::

    {"v": 1, "id": "q1", "kind": "mine", "ok": true, "seconds": 0.004,
     "result": {"found": true, "expression": "...", "complexity_bits": 5.17,
                "stats": {...}}}
    {"v": 1, "id": "q2", "kind": "mine", "ok": false,
     "error": {"code": "unknown_entity", "reason": "unknown entities: ..."}}

The error object is exactly the shape ``remi batch`` emits per line
(``code`` / ``reason`` / optional ``line``), so one client-side error
handler covers both surfaces.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple, Union

from repro.core.batch import (
    ERR_BAD_REQUEST,
    ERR_BAD_UPDATE,
    ERR_INTERNAL,
    ERR_UNKNOWN_ENTITY,
    UPDATE_OPS,
    _error_json,
)

#: The wire-protocol version stamped on every response (bump on any
#: breaking change to the envelope shape).
PROTOCOL_VERSION = 1

#: A replica exceeded the request deadline: the caller gets this typed
#: error envelope instead of a hung connection.  Not in ``core.batch``'s
#: vocabulary because timeouts only exist at the serving layer — the
#: synchronous batch path has no deadline to miss.
ERR_TIMEOUT = "timeout"


class EnvelopeError(ValueError):
    """A payload that cannot be parsed into a typed request."""

    def __init__(self, message: str, code: str = ERR_BAD_REQUEST):
        super().__init__(message)
        self.code = code


@dataclass(frozen=True)
class MineRequest:
    """Mine the Ĉ-minimal referring expression for *targets*.

    ``top_k`` overrides the service's bounded-queue knob for this one
    request (``None`` inherits the service config) — results are
    identical either way, only queue-build work changes.
    """

    targets: Tuple[str, ...]
    id: str = "-"
    verbalize: bool = False
    top_k: Optional[int] = None
    kind = "mine"


@dataclass(frozen=True)
class DescribeRequest:
    """Mine and verbalize; the response carries only the NL rendering
    (plus the raw expression for callers that want both)."""

    targets: Tuple[str, ...]
    id: str = "-"
    top_k: Optional[int] = None
    kind = "describe"


@dataclass(frozen=True)
class UpdateRequest:
    """Mutate the resident KB.  ``triple`` positions are bare IRI strings
    or N-Triples syntax, exactly as in the ``remi batch`` protocol."""

    op: str
    triple: Tuple[str, str, str]
    id: str = "-"
    kind = "update"


@dataclass(frozen=True)
class StatsRequest:
    """KB statistics and serving telemetry."""

    id: str = "-"
    kind = "stats"


Request = Union[MineRequest, DescribeRequest, UpdateRequest, StatsRequest]

#: ``type`` strings accepted on the wire, in dispatch order.
REQUEST_TYPES = ("mine", "describe", "update", "stats")


def _targets_from(payload: Dict, context: str) -> Tuple[str, ...]:
    raw = payload.get("targets")
    if not isinstance(raw, list) or not all(isinstance(t, str) for t in raw):
        raise EnvelopeError(f"{context}: 'targets' must be a list of IRI strings")
    if not raw:
        raise EnvelopeError(f"{context}: empty target set")
    return tuple(raw)


def _top_k_from(payload: Dict, context: str) -> Optional[int]:
    raw = payload.get("top_k")
    if raw is None:
        return None
    if isinstance(raw, bool) or not isinstance(raw, int) or raw < 1:
        raise EnvelopeError(f"{context}: 'top_k' must be a positive integer or null")
    return raw


def request_id_of(payload, line: Optional[int] = None) -> str:
    """Best-effort request id for error envelopes built *without* a
    parsed request — the payload may be arbitrarily malformed, or the
    failure (timeout, dead pool) may have happened before parsing.
    Mirrors :func:`parse_request`'s id defaulting."""
    if isinstance(payload, dict):
        return str(payload.get("id", line if line is not None else "-"))
    return str(line) if line is not None else "-"


def request_kind_of(payload) -> str:
    """Best-effort request kind for the same error envelopes, mirroring
    :func:`parse_request`'s legacy dispatch (bare list → mine, untyped
    object with ``op`` → update)."""
    if isinstance(payload, list):
        return "mine"
    if isinstance(payload, dict):
        kind = payload.get("type")
        if kind is None:
            kind = "update" if "op" in payload else "mine"
        return kind if kind in REQUEST_TYPES else "?"
    return "?"


def parse_request(payload, *, line: Optional[int] = None) -> Request:
    """Decoded JSON → a typed request (raises :class:`EnvelopeError`).

    *line*, when given, prefixes error messages with the input position —
    the NDJSON server and JSONL files pass it so parse failures point at
    the offending line.
    """
    context = f"line {line}" if line is not None else "request"
    if isinstance(payload, list):  # legacy batch form: bare target list
        payload = {"type": "mine", "targets": payload}
    if not isinstance(payload, dict):
        raise EnvelopeError(
            f"{context}: expected a JSON object or list, got {type(payload).__name__}"
        )
    kind = payload.get("type")
    if kind is None:  # legacy batch forms without a type tag
        kind = "update" if "op" in payload else "mine"
    if kind not in REQUEST_TYPES:
        raise EnvelopeError(
            f"{context}: unknown request type {kind!r}; "
            "use " + ", ".join(map(repr, REQUEST_TYPES))
        )
    request_id = str(payload.get("id", line if line is not None else "-"))
    if kind == "stats":
        return StatsRequest(id=request_id)
    if kind == "update":
        op = payload.get("op")
        if op not in UPDATE_OPS:
            raise EnvelopeError(
                f"{context}: unknown op {op!r}; use "
                + " or ".join(map(repr, UPDATE_OPS)),
                code=ERR_BAD_UPDATE,
            )
        triple = payload.get("triple")
        if (
            not isinstance(triple, list)
            or len(triple) != 3
            or not all(isinstance(part, str) for part in triple)
        ):
            raise EnvelopeError(
                f"{context}: 'triple' must be a [subject, predicate, object] "
                "list of strings",
                code=ERR_BAD_UPDATE,
            )
        return UpdateRequest(id=request_id, op=op, triple=tuple(triple))
    targets = _targets_from(payload, context)
    top_k = _top_k_from(payload, context)
    if kind == "describe":
        return DescribeRequest(id=request_id, targets=targets, top_k=top_k)
    return MineRequest(
        id=request_id,
        targets=targets,
        verbalize=bool(payload.get("verbalize", False)),
        top_k=top_k,
    )


@dataclass
class Response:
    """The one envelope every service call returns.

    ``ok`` distinguishes the two bodies: ``result`` (the kind-specific
    payload) when the call succeeded, ``error`` (the uniform
    code/reason/line object) when it did not.  ``version`` pins the
    protocol so clients can reject envelopes they do not understand.
    """

    id: str
    kind: str
    ok: bool
    result: Dict = field(default_factory=dict)
    error_code: Optional[str] = None
    error: Optional[str] = None
    line: Optional[int] = None
    seconds: float = 0.0
    version: int = PROTOCOL_VERSION

    @classmethod
    def success(cls, request, result: Dict, seconds: float = 0.0) -> "Response":
        return cls(
            id=request.id, kind=request.kind, ok=True, result=result, seconds=seconds
        )

    @classmethod
    def failure(
        cls,
        request_id: str,
        kind: str,
        reason: str,
        code: str = ERR_BAD_REQUEST,
        line: Optional[int] = None,
    ) -> "Response":
        return cls(
            id=request_id, kind=kind, ok=False,
            error=reason, error_code=code, line=line,
        )

    def to_json(self) -> Dict:
        record: Dict = {"v": self.version, "id": self.id, "kind": self.kind, "ok": self.ok}
        if self.ok:
            record["seconds"] = round(self.seconds, 6)
            record["result"] = self.result
        else:
            assert self.error is not None and self.error_code is not None
            record["error"] = _error_json(self.error_code, self.error, self.line)
        return record

    @classmethod
    def from_json(cls, record: Dict) -> "Response":
        """Rebuild from :meth:`to_json` output (client-side convenience)."""
        version = record.get("v")
        if version != PROTOCOL_VERSION:
            raise EnvelopeError(f"unsupported envelope version {version!r}")
        base = dict(
            id=str(record.get("id", "-")),
            kind=str(record.get("kind", "?")),
            version=version,
        )
        if record.get("ok"):
            return cls(
                ok=True,
                result=record.get("result", {}),
                seconds=float(record.get("seconds", 0.0)),
                **base,
            )
        error = record.get("error") or {}
        return cls(
            ok=False,
            error=error.get("reason", "unknown error"),
            error_code=error.get("code", ERR_INTERNAL),
            line=error.get("line"),
            **base,
        )


__all__ = [
    "ERR_BAD_REQUEST",
    "ERR_BAD_UPDATE",
    "ERR_INTERNAL",
    "ERR_TIMEOUT",
    "ERR_UNKNOWN_ENTITY",
    "DescribeRequest",
    "EnvelopeError",
    "MineRequest",
    "PROTOCOL_VERSION",
    "REQUEST_TYPES",
    "Request",
    "Response",
    "StatsRequest",
    "UpdateRequest",
    "parse_request",
    "request_id_of",
    "request_kind_of",
]
