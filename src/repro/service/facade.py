"""The one front door: :class:`MiningService`.

Every surface — the CLI subcommands, the ``remi serve`` network layer,
programmatic embedders — goes through this façade.  It owns exactly one
resident KB and one shared :class:`~repro.core.batch.BatchMiner` (built
from a validated :class:`~repro.service.config.ServiceConfig` through
the plugin registries), accepts the typed requests of
:mod:`repro.service.envelopes`, and returns versioned
:class:`~repro.service.envelopes.Response` envelopes with uniform error
objects.

Responses are **bit-identical** to calling the underlying miner
directly — the façade adds no post-processing, only the envelope — which
the seeded differential suite in ``tests/service/test_service.py`` pins
across 50 KBs × both backends.

>>> from repro.service import MineRequest, MiningService, ServiceConfig
>>> service = MiningService(kb, ServiceConfig(miner="premi"))
>>> response = service.mine(MineRequest(id="q1", targets=(str(rennes),)))
>>> response.ok, response.result["expression"]

Thread safety matches the miner underneath: concurrent ``mine`` /
``describe`` / ``stats`` calls are safe; ``update`` must not overlap
in-flight mining (the network layer enforces that barrier, exactly like
:meth:`~repro.core.batch.BatchMiner.serve_jsonl` does for streams).
"""

from __future__ import annotations

import threading
import time
from pathlib import Path
from typing import Dict, Iterable, Iterator, Optional, Union

from repro.core.batch import (
    BatchMiner,
    BatchOutcome,
    BatchRequest,
    BatchRequestError,
    ERR_BAD_UPDATE,
    ERR_INTERNAL,
    UpdateOutcome,
    parse_update_triple,
)
from repro.expressions.verbalize import Verbalizer
from repro.kb.base import BaseKnowledgeBase
from repro.kb.terms import IRI
from repro.registry import KB_BACKENDS
from repro.service.config import ServiceConfig
from repro.service.envelopes import (
    DescribeRequest,
    EnvelopeError,
    MineRequest,
    Request,
    Response,
    StatsRequest,
    UpdateRequest,
    parse_request,
)


def load_kb(path: Union[str, Path], backend: str = "interned") -> BaseKnowledgeBase:
    """Load a KB file into the named registry backend.

    RHDT binaries (``.hdt``) and N-Triples text (anything else) are
    auto-detected, exactly as the CLI always did — this is that logic,
    promoted to the service layer so every entry point shares it.
    """
    path = str(path)
    backend_class = KB_BACKENDS.get(backend)
    if path.endswith(".hdt"):
        from repro.kb.hdt import load_hdt

        loaded = load_hdt(path)
        if type(loaded) is backend_class:
            return loaded
        return backend_class(loaded.triples(), name=loaded.name)
    from repro.kb.ntriples import parse_ntriples_file

    return backend_class(parse_ntriples_file(path), name=Path(path).stem)


class MiningService:
    """Typed façade over one resident KB and its shared mining substrate.

    Parameters
    ----------
    kb:
        The resident knowledge base (any registry backend instance).
    config:
        A validated :class:`~repro.service.config.ServiceConfig`;
        defaults throughout.
    """

    def __init__(self, kb: BaseKnowledgeBase, config: Optional[ServiceConfig] = None):
        self.config = config or ServiceConfig()
        self.kb = kb
        self.verbalizer = Verbalizer(kb)
        self._started = time.time()
        # The mining substrate (prominence ranking, estimator, candidate
        # engine) is expensive to build and useless to a stats-only
        # caller, so it materializes on first mining use.
        self._batch: Optional[BatchMiner] = None
        self._batch_lock = threading.Lock()

    @property
    def batch(self) -> BatchMiner:
        """The shared :class:`~repro.core.batch.BatchMiner`, built on
        first use (double-checked, so concurrent server workers build it
        exactly once)."""
        miner = self._batch
        if miner is not None:
            return miner
        with self._batch_lock:
            if self._batch is None:
                self._batch = BatchMiner(
                    self.kb,
                    prominence=self.config.prominence,
                    config=self.config.miner_config,
                    workers=self.config.workers,
                    miner=self.config.miner,
                    mode=self.config.estimator,
                )
            return self._batch

    @classmethod
    def from_path(
        cls, path: Union[str, Path], config: Optional[ServiceConfig] = None
    ) -> "MiningService":
        """Build a service from a KB file, backend chosen by the config."""
        config = config or ServiceConfig()
        return cls(load_kb(path, config.backend), config)

    def warm_up(self) -> None:
        """Build the shared KB-derived state before the first request."""
        self.batch.warm_up()

    # ------------------------------------------------------------------
    # typed endpoints
    # ------------------------------------------------------------------

    def mine(self, request: MineRequest) -> Response:
        """The Ĉ-minimal RE for the request's targets (or a typed error)."""
        outcome = self.batch.mine_one(self._batch_request(request))
        return self._mine_response(request, outcome, verbalize=self._verbalize(request))

    def describe(self, request: DescribeRequest) -> Response:
        """Mine and verbalize; the result leads with the NL rendering."""
        outcome = self.batch.mine_one(self._batch_request(request))
        if outcome.error is not None:
            return self._outcome_failure(request, outcome)
        assert outcome.result is not None
        result: Dict = {"found": outcome.result.found}
        if outcome.result.found:
            result["verbalized"] = self.verbalizer.expression(outcome.result.expression)
            result["expression"] = repr(outcome.result.expression)
            result["complexity_bits"] = outcome.result.complexity
        return Response.success(request, result, seconds=outcome.seconds)

    def update(self, request: UpdateRequest) -> Response:
        """Apply one KB mutation.  Callers must not overlap this with
        in-flight mining — the server's update barrier guarantees it."""
        started = time.perf_counter()
        try:
            triple = parse_update_triple(request.triple, context="update")
        except BatchRequestError as exc:
            self.batch.errors += 1
            return Response.failure(request.id, request.kind, str(exc), ERR_BAD_UPDATE)
        outcome = self.batch.apply_update(request.op, triple, request.id)
        if outcome.error is not None:
            return Response.failure(
                request.id, request.kind, outcome.error, outcome.error_code
            )
        return Response.success(
            request,
            {
                "op": outcome.op,
                "triple": list(outcome.triple),
                "applied": outcome.applied,
                "epoch": outcome.epoch,
            },
            seconds=time.perf_counter() - started,
        )

    def stats(self, request: StatsRequest) -> Response:
        """KB statistics, serving telemetry and the resolved config.

        ``serving`` appears once traffic has built the mining substrate;
        a stats-only caller (``remi stats``) never pays for prominence
        rankings it will not use.
        """
        started = time.perf_counter()
        result = {
            "kb": dict(self.kb.stats()),
            "config": self.config.to_json(),
            "uptime_seconds": round(time.time() - self._started, 3),
        }
        if self._batch is not None:
            result["serving"] = self._batch.summary()
        return Response.success(request, result, seconds=time.perf_counter() - started)

    # ------------------------------------------------------------------
    # dispatch
    # ------------------------------------------------------------------

    def handle(self, request: Request) -> Response:
        """Route a typed request to its endpoint; unexpected exceptions
        become uniform ``internal`` error envelopes instead of tearing
        down the caller's stream."""
        try:
            if isinstance(request, MineRequest):
                return self.mine(request)
            if isinstance(request, DescribeRequest):
                return self.describe(request)
            if isinstance(request, UpdateRequest):
                return self.update(request)
            if isinstance(request, StatsRequest):
                return self.stats(request)
        except Exception as exc:  # noqa: BLE001 — uniform error envelope
            return Response.failure(
                request.id, request.kind, f"{type(exc).__name__}: {exc}", ERR_INTERNAL
            )
        return Response.failure(
            "-", "?", f"unsupported request type {type(request).__name__}"
        )

    def handle_json(self, payload, *, line: Optional[int] = None) -> Dict:
        """Decoded JSON in, envelope dict out — the wire-level entry the
        server and ``remi mine --json`` share."""
        try:
            request = parse_request(payload, line=line)
        except EnvelopeError as exc:
            request_id = (
                str(payload.get("id", line if line is not None else "-"))
                if isinstance(payload, dict)
                else str(line if line is not None else "-")
            )
            return Response.failure(
                request_id, "?", str(exc), exc.code, line=line
            ).to_json()
        return self.handle(request).to_json()

    # ------------------------------------------------------------------
    # streaming (the legacy JSONL surface of ``remi batch``)
    # ------------------------------------------------------------------

    def serve_jsonl(
        self, lines: Iterable[str]
    ) -> Iterator[Union[BatchOutcome, UpdateOutcome]]:
        """The ``remi batch`` stream protocol, unchanged — one outcome
        record per input line, updates applied under a flush barrier.
        Exposed here so the CLI is a thin client of the façade."""
        return self.batch.serve_jsonl(lines)

    def summary(self) -> Dict:
        return self.batch.summary()

    # ------------------------------------------------------------------

    def _verbalize(self, request: MineRequest) -> bool:
        return bool(request.verbalize or self.config.verbalize)

    @staticmethod
    def _batch_request(request: Union[MineRequest, DescribeRequest]) -> BatchRequest:
        return BatchRequest(
            id=request.id, targets=tuple(IRI(t) for t in request.targets)
        )

    def _outcome_failure(self, request, outcome: BatchOutcome) -> Response:
        assert outcome.error is not None
        return Response.failure(
            request.id, request.kind, outcome.error, outcome.error_code, outcome.line
        )

    def _mine_response(
        self, request: MineRequest, outcome: BatchOutcome, verbalize: bool
    ) -> Response:
        if outcome.error is not None:
            return self._outcome_failure(request, outcome)
        assert outcome.result is not None
        mining = outcome.result
        result: Dict = {
            "targets": [str(t) for t in outcome.request.targets],
            "found": mining.found,
        }
        if mining.found:
            result["expression"] = repr(mining.expression)
            result["complexity_bits"] = mining.complexity
            if verbalize:
                result["verbalized"] = self.verbalizer.expression(mining.expression)
        result["stats"] = mining.stats.to_json()
        return Response.success(request, result, seconds=outcome.seconds)

    def __repr__(self) -> str:
        return (
            f"MiningService(kb={type(self.kb).__name__}({len(self.kb)}), "
            f"miner={self.config.miner!r}, backend={self.config.backend!r})"
        )


__all__ = ["MiningService", "load_kb"]
