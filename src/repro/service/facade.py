"""The one front door: :class:`MiningService`.

Every surface — the CLI subcommands, the ``remi serve`` network layer,
programmatic embedders — goes through this façade.  It owns exactly one
resident KB and one shared :class:`~repro.core.batch.BatchMiner` (built
from a validated :class:`~repro.service.config.ServiceConfig` through
the plugin registries), accepts the typed requests of
:mod:`repro.service.envelopes`, and returns versioned
:class:`~repro.service.envelopes.Response` envelopes with uniform error
objects.

Responses are **bit-identical** to calling the underlying miner
directly — the façade adds no post-processing, only the envelope — which
the seeded differential suite in ``tests/service/test_service.py`` pins
across 50 KBs × both backends.

>>> from repro.service import MineRequest, MiningService, ServiceConfig
>>> service = MiningService(kb, ServiceConfig(miner="premi"))
>>> response = service.mine(MineRequest(id="q1", targets=(str(rennes),)))
>>> response.ok, response.result["expression"]

Thread safety matches the miner underneath: concurrent ``mine`` /
``describe`` / ``stats`` calls are safe.  Two write disciplines exist:

* **barrier mode** (the default, and the only mode for backends without
  snapshot support): ``update`` must not overlap in-flight mining — the
  network layer enforces that barrier, exactly like
  :meth:`~repro.core.batch.BatchMiner.serve_jsonl` does for streams;
* **snapshot mode** (:meth:`MiningService.enable_snapshots`, MVCC):
  reads serve from an immutable epoch session
  (:class:`~repro.kb.snapshot.KbSnapshot` + the miner bound to it) and
  never wait for writes; ``update`` calls still must not overlap *each
  other* — each one mutates the live KB and atomically publishes the
  next session before returning, so every client reads its own writes.
"""

from __future__ import annotations

import threading
import time
from pathlib import Path
from typing import Dict, Iterable, Iterator, Optional, Union

from repro.core.batch import (
    BatchMiner,
    BatchOutcome,
    BatchRequest,
    BatchRequestError,
    ERR_BAD_UPDATE,
    ERR_INTERNAL,
    UpdateOutcome,
    parse_update_triple,
)
from repro.core.results import SearchStats
from repro.expressions.verbalize import Verbalizer
from repro.kb.base import BaseKnowledgeBase
from repro.kb.epoch import CacheCoherence
from repro.kb.terms import IRI
from repro.registry import KB_BACKENDS
from repro.service.config import ServiceConfig
from repro.service.envelopes import (
    DescribeRequest,
    EnvelopeError,
    MineRequest,
    Request,
    Response,
    StatsRequest,
    UpdateRequest,
    parse_request,
    request_id_of,
)


def load_kb(path: Union[str, Path], backend: str = "interned") -> BaseKnowledgeBase:
    """Load a KB file into the named registry backend.

    KB images (sniffed by magic, see :mod:`repro.kb.image`), RHDT
    binaries (``.hdt``) and N-Triples text (anything else) are
    auto-detected, exactly as the CLI always did — this is that logic,
    promoted to the service layer so every entry point shares it.

    An image file under the default ``interned`` backend (or ``image``)
    opens zero-copy as an
    :class:`~repro.kb.image.ImageKnowledgeBase` — the whole point of
    building one; requesting any other backend materializes the triples
    into it.  Conversely, asking for the ``image`` backend on a
    non-image file raises :class:`~repro.kb.image.ImageError` pointing
    at ``remi build-image`` (an image is built once, not parsed per
    start).  N-Triples input streams line-by-line into the backend
    constructor, so peak load memory is O(store), not O(file) + O(store).
    """
    path = str(path)
    backend_class = KB_BACKENDS.get(backend)
    from repro.kb.image import ImageError, ImageKnowledgeBase, is_image_file

    if is_image_file(path):
        kb = ImageKnowledgeBase(path)
        if issubclass(ImageKnowledgeBase, backend_class):
            return kb
        try:
            return backend_class(kb.triples(), name=kb.name)
        finally:
            kb.close()
    if backend_class is ImageKnowledgeBase:
        raise ImageError(
            f"{path} is not a KB image; build one with "
            f"`remi build-image {path} <out>.remimg` and serve that"
        )
    if path.endswith(".hdt"):
        from repro.kb.hdt import load_hdt

        loaded = load_hdt(path)
        if type(loaded) is backend_class:
            return loaded
        return backend_class(loaded.triples(), name=loaded.name)
    from repro.kb.ntriples import iter_ntriples_file

    return backend_class(iter_ntriples_file(path), name=Path(path).stem)


class _SnapshotSession:
    """One immutable epoch view plus the read substrate bound to it.

    Everything a mining request touches — the snapshot, its miner (with
    matcher, estimator, candidate engine, prominence) and its verbalizer
    — lives in one object, so a query that loaded the session attribute
    keeps a fully consistent epoch even while an update publishes the
    next session underneath it.  Sessions are immutable once published;
    superseded ones die when their in-flight readers finish.
    """

    __slots__ = ("snapshot", "miner", "verbalizer")

    def __init__(self, snapshot, miner: BatchMiner, verbalizer: Verbalizer):
        self.snapshot = snapshot
        self.miner = miner
        self.verbalizer = verbalizer


class MiningService:
    """Typed façade over one resident KB and its shared mining substrate.

    Parameters
    ----------
    kb:
        The resident knowledge base (any registry backend instance).
    config:
        A validated :class:`~repro.service.config.ServiceConfig`;
        defaults throughout.
    """

    def __init__(self, kb: BaseKnowledgeBase, config: Optional[ServiceConfig] = None):
        self.config = config or ServiceConfig()
        self.kb = kb
        self.verbalizer = Verbalizer(kb)
        self._started = time.time()
        # The mining substrate (prominence ranking, estimator, candidate
        # engine) is expensive to build and useless to a stats-only
        # caller, so it materializes on first mining use.
        self._batch: Optional[BatchMiner] = None
        self._batch_lock = threading.Lock()
        # MVCC snapshot reads (enable_snapshots): queries serve from an
        # immutable epoch session; updates publish the next one.
        self._session: Optional[_SnapshotSession] = None
        self._session_lock = threading.Lock()
        self._session_coherence = CacheCoherence()
        self._retired_requests = 0
        self._retired_errors = 0
        self._retired_search = SearchStats()

    @property
    def batch(self) -> BatchMiner:
        """The shared :class:`~repro.core.batch.BatchMiner`, built on
        first use (double-checked, so concurrent server workers build it
        exactly once)."""
        miner = self._batch
        if miner is not None:
            return miner
        with self._batch_lock:
            if self._batch is None:
                self._batch = BatchMiner(
                    self.kb,
                    prominence=self.config.prominence,
                    config=self.config.miner_config,
                    workers=self.config.workers,
                    miner=self.config.miner,
                    mode=self.config.estimator,
                )
            return self._batch

    @classmethod
    def from_path(
        cls, path: Union[str, Path], config: Optional[ServiceConfig] = None
    ) -> "MiningService":
        """Build a service from a KB file, backend chosen by the config."""
        config = config or ServiceConfig()
        return cls(load_kb(path, config.backend), config)

    def warm_up(self) -> None:
        """Build the shared KB-derived state before the first request."""
        session = self._session
        if session is not None:
            session.miner.warm_up()
            return
        self.batch.warm_up()

    # ------------------------------------------------------------------
    # MVCC snapshot sessions (reads never wait for writes)
    # ------------------------------------------------------------------

    def enable_snapshots(self) -> bool:
        """Serve reads from immutable epoch snapshots when the backend
        supports them (``kb.supports_snapshots``).

        Returns True when snapshot reads are on: ``mine``/``describe``
        run against the session pinned at the epoch the request loaded,
        so the network layer may drop its query-side update barrier —
        updates only serialize against each other and publish the next
        session.  Returns False (and changes nothing) on barrier-only
        backends like the hash store, which remains the differential
        reference for this path.
        """
        if not getattr(self.kb, "supports_snapshots", False):
            return False
        with self._session_lock:
            if self._session is None:
                self._session = self._build_session(self.kb.at_epoch())
        return True

    @property
    def snapshot_reads(self) -> bool:
        """True once :meth:`enable_snapshots` switched reads to sessions."""
        return self._session is not None

    def _build_session(self, snapshot) -> _SnapshotSession:
        return _SnapshotSession(
            snapshot,
            BatchMiner(
                snapshot,
                prominence=self.config.prominence,
                config=self.config.miner_config,
                workers=self.config.workers,
                miner=self.config.miner,
                mode=self.config.estimator,
            ),
            Verbalizer(snapshot),
        )

    def _roll_session(self) -> None:
        """Publish the epoch session for the KB's current state.

        Called by the update path after a mutation applied (updates are
        serialized by the caller, so the KB is quiescent here).  When
        the mutation gap nets to nothing — paired delete + re-add churn
        — ``at_epoch()`` returns the same head view and the warm session
        survives with every cache intact; otherwise the next session is
        built and the old one retires into the service-lifetime totals.
        """
        with self._session_lock:
            session = self._session
            if session is None:
                return
            started = time.perf_counter()
            snapshot = self.kb.at_epoch()
            coherence = self._session_coherence
            coherence.epochs_seen += 1
            if snapshot is session.snapshot:
                coherence.noops += 1
                return
            self._retire_locked(session)
            self._session = self._build_session(snapshot)
            coherence.invalidations += 1
            coherence.rebuild_seconds += time.perf_counter() - started

    def _retire_locked(self, session: _SnapshotSession) -> None:
        miner = session.miner
        self._retired_requests += miner.requests_served
        self._retired_errors += miner.errors
        self._retired_search.accumulate(miner.search_stats)
        self._session_coherence.merge(miner.coherence())

    def _reader(self):
        """The ``(miner, verbalizer)`` pair serving this read: the
        current snapshot session when enabled, else the live substrate.
        One attribute load — a concurrent session roll never splits a
        request across epochs."""
        session = self._session
        if session is not None:
            return session.miner, session.verbalizer
        return self.batch, self.verbalizer

    # ------------------------------------------------------------------
    # typed endpoints
    # ------------------------------------------------------------------

    def mine(self, request: MineRequest) -> Response:
        """The Ĉ-minimal RE for the request's targets (or a typed error)."""
        miner, verbalizer = self._reader()
        outcome = miner.mine_one(self._batch_request(request))
        return self._mine_response(
            request, outcome, verbalize=self._verbalize(request), verbalizer=verbalizer
        )

    def describe(self, request: DescribeRequest) -> Response:
        """Mine and verbalize; the result leads with the NL rendering."""
        miner, verbalizer = self._reader()
        outcome = miner.mine_one(self._batch_request(request))
        if outcome.error is not None:
            return self._outcome_failure(request, outcome)
        assert outcome.result is not None
        result: Dict = {"found": outcome.result.found}
        if outcome.result.found:
            result["verbalized"] = verbalizer.expression(outcome.result.expression)
            result["expression"] = repr(outcome.result.expression)
            result["complexity_bits"] = outcome.result.complexity
        return Response.success(request, result, seconds=outcome.seconds)

    def update(self, request: UpdateRequest) -> Response:
        """Apply one KB mutation.  Callers must serialize updates against
        each other (the server's update barrier does); with snapshot
        sessions enabled, reads keep flowing — the mutation lands on the
        live KB and the next epoch session publishes atomically before
        this returns, so the caller observes its own write."""
        started = time.perf_counter()
        try:
            triple = parse_update_triple(request.triple, context="update")
        except BatchRequestError as exc:
            self.batch.errors += 1
            return Response.failure(request.id, request.kind, str(exc), ERR_BAD_UPDATE)
        outcome = self.batch.apply_update(request.op, triple, request.id)
        if outcome.error is not None:
            return Response.failure(
                request.id, request.kind, outcome.error, outcome.error_code
            )
        if outcome.applied:
            self._roll_session()
        return Response.success(
            request,
            {
                "op": outcome.op,
                "triple": list(outcome.triple),
                "applied": outcome.applied,
                "epoch": outcome.epoch,
            },
            seconds=time.perf_counter() - started,
        )

    def stats(self, request: StatsRequest) -> Response:
        """KB statistics, serving telemetry and the resolved config.

        ``serving`` appears once traffic has built the mining substrate;
        a stats-only caller (``remi stats``) never pays for prominence
        rankings it will not use.
        """
        started = time.perf_counter()
        result = {
            "kb": dict(self.kb.stats()),
            "config": self.config.to_json(),
            "uptime_seconds": round(time.time() - self._started, 3),
        }
        if self._batch is not None or self._session is not None:
            result["serving"] = self.summary()
        return Response.success(request, result, seconds=time.perf_counter() - started)

    # ------------------------------------------------------------------
    # dispatch
    # ------------------------------------------------------------------

    def handle(self, request: Request) -> Response:
        """Route a typed request to its endpoint; unexpected exceptions
        become uniform ``internal`` error envelopes instead of tearing
        down the caller's stream."""
        try:
            if isinstance(request, MineRequest):
                return self.mine(request)
            if isinstance(request, DescribeRequest):
                return self.describe(request)
            if isinstance(request, UpdateRequest):
                return self.update(request)
            if isinstance(request, StatsRequest):
                return self.stats(request)
        except Exception as exc:  # noqa: BLE001 — uniform error envelope
            return Response.failure(
                request.id, request.kind, f"{type(exc).__name__}: {exc}", ERR_INTERNAL
            )
        return Response.failure(
            "-", "?", f"unsupported request type {type(request).__name__}"
        )

    def handle_json(self, payload, *, line: Optional[int] = None) -> Dict:
        """Decoded JSON in, envelope dict out — the wire-level entry the
        server and ``remi mine --json`` share."""
        try:
            request = parse_request(payload, line=line)
        except EnvelopeError as exc:
            return Response.failure(
                request_id_of(payload, line), "?", str(exc), exc.code, line=line
            ).to_json()
        return self.handle(request).to_json()

    # ------------------------------------------------------------------
    # streaming (the legacy JSONL surface of ``remi batch``)
    # ------------------------------------------------------------------

    def serve_jsonl(
        self, lines: Iterable[str]
    ) -> Iterator[Union[BatchOutcome, UpdateOutcome]]:
        """The ``remi batch`` stream protocol, unchanged — one outcome
        record per input line, updates applied under a flush barrier.
        Exposed here so the CLI is a thin client of the façade."""
        return self.batch.serve_jsonl(lines)

    def summary(self) -> Dict:
        """Serving telemetry; with snapshot sessions on, the numbers
        aggregate across the current session, every retired session and
        the live update substrate (one service, one report)."""
        session = self._session
        if session is None:
            return self.batch.summary()
        summary = session.miner.summary()
        summary["backend"] = type(self.kb).__name__  # the live store
        summary["epoch"] = self.kb.epoch
        summary["snapshot_epoch"] = session.snapshot.epoch
        summary["requests_served"] += self._retired_requests
        summary["errors"] += self._retired_errors
        search = SearchStats()
        search.accumulate(self._retired_search)
        search.accumulate(session.miner.search_stats)
        summary["search_stats"] = search.to_json()
        coherence = session.miner.coherence()
        coherence.merge(self._session_coherence)
        batch = self._batch
        if batch is not None:
            summary["updates_applied"] = batch.updates_applied
            summary["errors"] += batch.errors
            coherence.merge(batch.coherence())
        summary["coherence"] = coherence.to_dict()
        return summary

    # ------------------------------------------------------------------

    def _verbalize(self, request: MineRequest) -> bool:
        return bool(request.verbalize or self.config.verbalize)

    @staticmethod
    def _batch_request(request: Union[MineRequest, DescribeRequest]) -> BatchRequest:
        return BatchRequest(
            id=request.id,
            targets=tuple(IRI(t) for t in request.targets),
            top_k=request.top_k,
        )

    def _outcome_failure(self, request, outcome: BatchOutcome) -> Response:
        assert outcome.error is not None
        return Response.failure(
            request.id, request.kind, outcome.error, outcome.error_code, outcome.line
        )

    def _mine_response(
        self,
        request: MineRequest,
        outcome: BatchOutcome,
        verbalize: bool,
        verbalizer: Optional[Verbalizer] = None,
    ) -> Response:
        if outcome.error is not None:
            return self._outcome_failure(request, outcome)
        assert outcome.result is not None
        mining = outcome.result
        result: Dict = {
            "targets": [str(t) for t in outcome.request.targets],
            "found": mining.found,
        }
        if mining.found:
            result["expression"] = repr(mining.expression)
            result["complexity_bits"] = mining.complexity
            if verbalize:
                result["verbalized"] = (verbalizer or self.verbalizer).expression(
                    mining.expression
                )
        result["stats"] = mining.stats.to_json()
        return Response.success(request, result, seconds=outcome.seconds)

    def __repr__(self) -> str:
        return (
            f"MiningService(kb={type(self.kb).__name__}({len(self.kb)}), "
            f"miner={self.config.miner!r}, backend={self.config.backend!r})"
        )


__all__ = ["MiningService", "load_kb"]
