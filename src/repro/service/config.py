"""Validated service configuration: one object instead of scattered kwargs.

Before the façade existed, standing up a miner meant threading the same
half-dozen choices — backend, miner class, prominence, estimator mode,
language bias, timeout, worker count — through three different
constructors with three different spellings.  :class:`ServiceConfig`
names each choice once, validates every registry key at construction
time (a typo fails with the list of available plugins, not deep inside a
request), and builds the matching :class:`~repro.core.config.MinerConfig`.

All fields have production-sensible defaults::

    ServiceConfig()                          # interned backend, REMI, Ĉfr
    ServiceConfig(miner="premi", workers=4)  # parallel miner, 4 concurrent requests
    ServiceConfig.from_json({"backend": "hash", "prominence": "pr"})
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields, replace
from typing import Dict, Optional

from repro.core.config import LanguageBias, MinerConfig
from repro.registry import ESTIMATORS, KB_BACKENDS, MINERS, PROMINENCE, RegistryError


@dataclass(frozen=True)
class ServiceConfig:
    """Every knob of a :class:`~repro.service.facade.MiningService`.

    Attributes
    ----------
    backend:
        :data:`~repro.registry.KB_BACKENDS` key used when the service
        loads a KB from a file (``interned`` is the production choice).
    miner:
        :data:`~repro.registry.MINERS` key (``remi``, ``premi``,
        ``full-brevity``, ``incremental``, or a late-registered plugin).
    prominence:
        :data:`~repro.registry.PROMINENCE` key (``fr`` / ``pr``).
    estimator:
        :data:`~repro.registry.ESTIMATORS` key (``exact`` / ``powerlaw``).
    workers:
        Concurrent requests served by the shared
        :class:`~repro.core.batch.BatchMiner` / the network layer's
        worker pool.
    verbalize:
        Include NL verbalizations in mine responses by default.
    request_timeout:
        Per-request deadline (seconds) for multi-process replica rounds:
        a replica that does not answer in time yields a typed ``timeout``
        error envelope and is terminated for respawn.  ``None`` or ``0``
        disables the deadline (a wedged replica then hangs its caller —
        test-only territory).
    heartbeat_interval:
        Seconds between fleet-supervisor passes (heartbeat pings to idle
        replicas, crash sweeps, respawns).  ``0`` disables supervision:
        the fleet is fail-soft only, as before PR 10.
    max_restarts:
        Failed respawn attempts per replica slot before its circuit
        breaker trips and the slot is abandoned as degraded.
    restart_backoff:
        Base of the per-slot exponential respawn backoff
        (``restart_backoff * 2**attempts`` seconds, capped at 30).
    miner_config:
        The full :class:`~repro.core.config.MinerConfig`; the common
        overrides (language bias, timeout, bounded top-k) have wire-level
        shorthands in :meth:`from_json`.
    """

    backend: str = "interned"
    miner: str = "remi"
    prominence: str = "fr"
    estimator: str = "exact"
    workers: int = 1
    verbalize: bool = False
    request_timeout: Optional[float] = 30.0
    heartbeat_interval: float = 2.0
    max_restarts: int = 5
    restart_backoff: float = 0.5
    miner_config: MinerConfig = field(default_factory=MinerConfig)

    def __post_init__(self) -> None:
        for registry, key in (
            (KB_BACKENDS, self.backend),
            (MINERS, self.miner),
            (PROMINENCE, self.prominence),
            (ESTIMATORS, self.estimator),
        ):
            if key not in registry:
                raise RegistryError(registry.kind, key, registry.names())
        if self.workers < 1:
            raise ValueError(f"workers must be ≥ 1, got {self.workers}")
        if self.request_timeout is not None and self.request_timeout < 0:
            raise ValueError(
                f"request_timeout must be ≥ 0 or null, got {self.request_timeout}"
            )
        if self.heartbeat_interval < 0:
            raise ValueError(
                f"heartbeat_interval must be ≥ 0, got {self.heartbeat_interval}"
            )
        if self.max_restarts < 1:
            raise ValueError(f"max_restarts must be ≥ 1, got {self.max_restarts}")
        if self.restart_backoff < 0:
            raise ValueError(
                f"restart_backoff must be ≥ 0, got {self.restart_backoff}"
            )

    def with_(self, **overrides) -> "ServiceConfig":
        """A copy with *overrides* applied (validation re-runs)."""
        return replace(self, **overrides)

    # ------------------------------------------------------------------
    # wire form
    # ------------------------------------------------------------------

    def to_json(self) -> Dict:
        record = {
            "backend": self.backend,
            "miner": self.miner,
            "prominence": self.prominence,
            "estimator": self.estimator,
            "workers": self.workers,
            "verbalize": self.verbalize,
            "request_timeout": self.request_timeout,
            "heartbeat_interval": self.heartbeat_interval,
            "max_restarts": self.max_restarts,
            "restart_backoff": self.restart_backoff,
            "miner_config": self.miner_config.to_json(),
        }
        return record

    @classmethod
    def from_json(cls, record: Dict) -> "ServiceConfig":
        """Rebuild from :meth:`to_json` output, accepting shorthands
        (``language``, ``timeout_seconds``, ``top_k``) that fold into the
        nested miner config — the shapes the CLI flags produce."""
        decoded = dict(record)
        miner_config = decoded.pop("miner_config", None)
        config = (
            MinerConfig.from_json(miner_config)
            if miner_config is not None
            else MinerConfig()
        )
        shorthand = {}
        if "language" in decoded:
            shorthand["language"] = LanguageBias(decoded.pop("language"))
        if "timeout_seconds" in decoded:
            shorthand["timeout_seconds"] = decoded.pop("timeout_seconds")
        if "top_k" in decoded:
            shorthand["top_k"] = decoded.pop("top_k")
        if shorthand:
            config = replace(config, **shorthand)
        names = {spec.name for spec in fields(cls)}
        unknown = set(decoded) - names
        if unknown:
            raise ValueError(f"unknown ServiceConfig fields: {sorted(unknown)}")
        return cls(miner_config=config, **decoded)


__all__ = ["ServiceConfig"]
