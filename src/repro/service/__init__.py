"""``repro.service`` — the single public API of the mining system.

Four layers, one front door:

* :mod:`repro.service.envelopes` — the typed request/response vocabulary
  (``MineRequest`` … ``StatsRequest`` → a versioned ``Response`` with
  uniform error objects);
* :mod:`repro.service.config` — :class:`ServiceConfig`, the validated
  construction surface that subsumes the scattered constructor kwargs;
* :mod:`repro.service.facade` — :class:`MiningService`, which owns the
  resident KB + shared :class:`~repro.core.batch.BatchMiner` and answers
  envelopes bit-identically to direct miner calls;
* :mod:`repro.service.server` — the concurrent ``remi serve``
  NDJSON-over-TCP layer (bounded worker pool, update barrier,
  backpressure, graceful drain);
* :mod:`repro.service.workers` — :class:`WorkerPool`, the multi-process
  scale-out: N spawned processes each holding an epoch replica of the
  KB (rehydrated via :mod:`repro.kb.wire`); the server routes queries
  to replicas and fans updates to all of them in epoch lock-step.
* :mod:`repro.service.supervisor` — :class:`FleetSupervisor`, which
  keeps the pool at full strength: heartbeats + liveness sweeps detect
  crashed/wedged replicas, bounded-backoff respawns bring them back at
  the router's exact epoch (under the server's update barrier), and a
  circuit breaker abandons slots that keep dying.
* :mod:`repro.service.faults` — :class:`FaultPlan`, the deterministic
  chaos harness: seeded (point, occurrence) schedules that make every
  recovery path above replayable and testable.

The plugin registries the service resolves its names through live in
:mod:`repro.registry` (KB backends, miners, prominence providers,
complexity estimators) and are re-exported here for convenience.
"""

from repro.registry import (
    ESTIMATORS,
    KB_BACKENDS,
    MINERS,
    PROMINENCE,
    Registry,
    RegistryError,
)
from repro.service.config import ServiceConfig
from repro.service.envelopes import (
    DescribeRequest,
    EnvelopeError,
    MineRequest,
    PROTOCOL_VERSION,
    Request,
    Response,
    StatsRequest,
    UpdateRequest,
    parse_request,
)
from repro.service.facade import MiningService, load_kb
from repro.service.faults import FaultPlan, FaultRule
from repro.service.server import MiningServer, run_server
from repro.service.supervisor import FleetSupervisor
from repro.service.workers import WorkerPool, WorkerPoolError, WorkerTimeout

__all__ = [
    "DescribeRequest",
    "ESTIMATORS",
    "EnvelopeError",
    "FaultPlan",
    "FaultRule",
    "FleetSupervisor",
    "KB_BACKENDS",
    "MINERS",
    "MineRequest",
    "MiningServer",
    "MiningService",
    "PROMINENCE",
    "PROTOCOL_VERSION",
    "Registry",
    "RegistryError",
    "Request",
    "Response",
    "ServiceConfig",
    "StatsRequest",
    "UpdateRequest",
    "WorkerPool",
    "WorkerPoolError",
    "WorkerTimeout",
    "load_kb",
    "parse_request",
    "run_server",
]
