"""``remi serve``: the concurrent NDJSON-over-TCP network layer.

One resident :class:`~repro.service.facade.MiningService` serves many
concurrent clients.  The wire protocol is newline-delimited JSON both
ways: each client line is one envelope request
(:mod:`repro.service.envelopes` — including the untyped ``remi batch``
legacy forms), each server line one versioned response.  Responses
stream back as soon as each request completes, so a slow mine does not
head-of-line-block a fast one — clients correlate by ``id``.

Concurrency model:

* **bounded worker pool** — mining runs on a fixed
  :class:`~concurrent.futures.ThreadPoolExecutor`; the asyncio loop only
  parses, schedules and writes.
* **router mode** (``remi serve --workers N``): a
  :class:`~repro.service.workers.WorkerPool` of N spawned processes each
  holds an epoch replica of the KB (rehydrated from
  :mod:`repro.kb.wire` bytes).  ``mine``/``describe`` dispatch to any
  replica — true multi-core scaling, the GIL no longer serializes
  mining — while updates apply to the router's authoritative KB under
  the barrier and then fan to every replica in epoch lock-step before
  the response is written (read-your-writes holds across processes).
  ``--workers 0`` keeps the single-process path below as the
  bit-identical differential reference.
* **MVCC snapshot reads** (snapshot-capable backends, i.e. the interned
  store): every query serves from the immutable epoch session it loaded
  (:meth:`~repro.service.facade.MiningService.enable_snapshots`), so
  **reads never wait for writes** and writes never wait for reads.  The
  update barrier still serializes updates *against each other*; each
  update mutates the live KB exclusively and publishes the next epoch
  session before its response is written.
* **barrier mode** (backends without snapshot support, i.e. the hash
  store — the differential reference for the snapshot path): queries
  overlap each other; an update waits for every in-flight query (across
  ALL connections) to drain, applies exclusively, then traffic resumes.
* **same-connection ordering** holds in both modes: an update flushes
  that connection's own pending queries first and the next line is only
  read after the update's response, so a client that sends ``mine,
  update, mine`` observes the second mine against the mutated KB —
  read-your-writes, exactly like
  :meth:`~repro.core.batch.BatchMiner.serve_jsonl`.
* **backpressure** — at most ``max_pending`` requests may be in flight;
  beyond that the server stops reading sockets, which TCP propagates to
  the clients.
* **graceful drain** — a ``{"type": "shutdown"}`` line (or
  :meth:`MiningServer.drain`, or SIGINT on the CLI) stops accepting,
  lets every in-flight request finish and answer, then closes.  The
  drain task is held (never GC'd mid-flight); a drain failure is logged
  and re-raised from :meth:`MiningServer.serve_until_drained`.

Run it::

    remi serve kb.hdt --port 8757 --pool 4

or in-process (the test/bench harness does this)::

    server = MiningServer(MiningService(kb), port=0)
    await server.start()            # port 0 → ephemeral, see server.port
"""

from __future__ import annotations

import asyncio
import contextlib
import json
import logging
from concurrent.futures import ThreadPoolExecutor
from functools import partial
from typing import Dict, Optional, Set

from repro.core.batch import ERR_BAD_REQUEST
from repro.service.envelopes import (
    ERR_TIMEOUT,
    PROTOCOL_VERSION,
    Response,
    request_id_of,
    request_kind_of,
)
from repro.service.facade import MiningService
from repro.service.supervisor import FleetSupervisor
from repro.service.workers import WorkerPool, WorkerPoolError, WorkerTimeout

_LOG = logging.getLogger(__name__)


class _UpdateBarrier:
    """An async readers-writer gate: queries share, updates are exclusive.

    Writer-preferring and cancellation-safe: the moment an update is
    *queued* (not merely active), new ``query()`` entrants hold at the
    gate, so a steady query stream cannot starve mutations — the writer
    only waits for the queries that were already in flight when it
    arrived.  A queued writer that gets cancelled (client gone, timeout)
    re-opens the gate on its way out; without that wake-up, queries
    blocked on the writer's presence would sleep forever once no active
    reader remains to notify them.
    """

    def __init__(self) -> None:
        self._cond = asyncio.Condition()
        self._active_queries = 0
        self._updating = False
        self._waiting_updates = 0

    @contextlib.asynccontextmanager
    async def query(self):
        async with self._cond:
            # Writer preference: block behind QUEUED updates too, not
            # just the active one.
            while self._updating or self._waiting_updates:
                await self._cond.wait()
            self._active_queries += 1
        try:
            yield
        finally:
            async with self._cond:
                self._active_queries -= 1
                self._cond.notify_all()

    @contextlib.asynccontextmanager
    async def update(self):
        async with self._cond:
            self._waiting_updates += 1
            try:
                while self._updating or self._active_queries:
                    await self._cond.wait()
                self._updating = True
            finally:
                self._waiting_updates -= 1
                if not self._updating:
                    # Cancelled while queued: the gate this writer was
                    # holding closed must re-open, and no active reader
                    # or writer may remain to do it later.  (On the
                    # success path _updating is True — ours or another
                    # writer's — and that writer's exit notifies.)
                    self._cond.notify_all()
        try:
            yield
        finally:
            async with self._cond:
                self._updating = False
                self._cond.notify_all()


class MiningServer:
    """A concurrent NDJSON-over-TCP front end for one :class:`MiningService`.

    Parameters
    ----------
    service:
        The façade all requests route through.
    host, port:
        Bind address; ``port=0`` picks an ephemeral port (read it back
        from :attr:`port` after :meth:`start`).
    pool_workers:
        Threads in the mining pool — the request-level parallelism.
    max_pending:
        In-flight request bound; beyond it the server stops reading
        sockets (backpressure).
    workers:
        An optional :class:`~repro.service.workers.WorkerPool` of
        process replicas — router mode.  ``mine``/``describe`` requests
        dispatch to a replica (falling back to the local façade when the
        pool is unusable); applied updates fan to every replica inside
        the update barrier, before the update's response is written.
        The pool's lifecycle belongs to its creator: :meth:`start`
        starts it (idempotent), but :meth:`drain` never stops it, so one
        pool can outlive several servers (the bench reuses one across
        tiers).
    supervise:
        In router mode, run a :class:`~repro.service.supervisor.
        FleetSupervisor` over the pool for the server's lifetime
        (heartbeats, crash detection, respawns under this server's
        update barrier).  Knobs come from the service config
        (``heartbeat_interval`` etc.); an interval of ``0`` disables the
        loop even when this is True.  The supervisor — unlike the pool —
        belongs to the server: :meth:`drain` stops it.
    """

    def __init__(
        self,
        service: MiningService,
        host: str = "127.0.0.1",
        port: int = 0,
        pool_workers: int = 4,
        max_pending: int = 32,
        workers: Optional[WorkerPool] = None,
        supervise: bool = True,
    ):
        if pool_workers < 1:
            raise ValueError(f"pool_workers must be ≥ 1, got {pool_workers}")
        if max_pending < 1:
            raise ValueError(f"max_pending must be ≥ 1, got {max_pending}")
        self.service = service
        self.host = host
        self.port = port
        self.pool_workers = pool_workers
        self.max_pending = max_pending
        self.requests_in_flight = 0
        #: Responses that could not be delivered because the client had
        #: already disconnected (the request still completed and its
        #: accounting balanced — see :meth:`_send`).
        self.responses_dropped = 0
        #: Replica request deadlines that fired; each one answered its
        #: client with a typed ``timeout`` error envelope.
        self.request_timeouts = 0
        self._workers = workers
        self._supervise = supervise
        self._supervisor: Optional[FleetSupervisor] = None
        self._pool: Optional[ThreadPoolExecutor] = None
        self._server: Optional[asyncio.base_events.Server] = None
        self._barrier = _UpdateBarrier()
        self._snapshot_reads = False
        self._inflight: Optional[asyncio.Semaphore] = None
        self._connections: Set[asyncio.StreamWriter] = set()
        self._conn_tasks: Set[asyncio.Task] = set()
        self._request_tasks: Set[asyncio.Task] = set()
        self._draining = False
        self._done: Optional[asyncio.Event] = None
        self._drain_task: Optional[asyncio.Task] = None
        self._drain_error: Optional[BaseException] = None

    # ------------------------------------------------------------------

    async def start(self) -> None:
        """Bind and begin accepting; returns once listening."""
        # MVCC reads: on snapshot-capable backends the façade pins every
        # query to an immutable epoch session and queries skip the
        # barrier entirely (updates still serialize against each other).
        self._snapshot_reads = self.service.enable_snapshots()
        if self._workers is not None:
            # Spawning replicas blocks on process startup + wire
            # rehydration; keep the loop responsive while they come up.
            await asyncio.get_running_loop().run_in_executor(
                None, self._workers.start
            )
            if self._supervise:
                config = self.service.config
                self._supervisor = FleetSupervisor(
                    self._workers,
                    exclusive=self._barrier.update,
                    heartbeat_interval=config.heartbeat_interval,
                    max_restarts=config.max_restarts,
                    backoff_base=config.restart_backoff,
                )
                self._supervisor.start()
        self._pool = ThreadPoolExecutor(
            max_workers=self.pool_workers, thread_name_prefix="remi-serve"
        )
        self._inflight = asyncio.Semaphore(self.max_pending)
        self._done = asyncio.Event()
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]

    @property
    def snapshot_reads(self) -> bool:
        """True when queries serve from epoch snapshots (no read barrier)."""
        return self._snapshot_reads

    @property
    def workers(self) -> Optional[WorkerPool]:
        """The process-replica pool when running in router mode."""
        return self._workers

    @property
    def supervisor(self) -> Optional[FleetSupervisor]:
        """The fleet supervisor, when router mode runs supervised."""
        return self._supervisor

    def telemetry(self) -> Dict:
        """Serving counters for the ``stats`` envelope and the CLI's
        shutdown summary: delivery accounting plus, in router mode, the
        pool's fan-out/epoch numbers."""
        info: Dict = {
            "responses_dropped": self.responses_dropped,
            "requests_in_flight": self.requests_in_flight,
            "request_timeouts": self.request_timeouts,
            "snapshot_reads": self._snapshot_reads,
        }
        if self._workers is not None:
            info["workers"] = self._workers.stats()
        return info

    async def serve_until_drained(self) -> None:
        """Block until a drain completes (shutdown request or :meth:`drain`).

        Re-raises the failure when the drain itself broke — a swallowed
        drain error would report a clean shutdown that never happened.
        """
        assert self._done is not None, "call start() first"
        await self._done.wait()
        if self._drain_error is not None:
            raise self._drain_error

    async def drain(self) -> None:
        """Graceful stop: no new connections, in-flight requests finish
        and answer, then sockets close and the pool shuts down.

        Always releases :meth:`serve_until_drained` waiters — a failure
        mid-drain is recorded (and re-raised, both here and there)
        instead of leaving them blocked forever.
        """
        if self._draining:
            await self.serve_until_drained()
            return
        self._draining = True
        try:
            await self._drain_inner()
        except BaseException as exc:
            self._drain_error = exc
            raise
        finally:
            assert self._done is not None
            self._done.set()

    async def _drain_inner(self) -> None:
        assert self._server is not None
        if self._supervisor is not None:
            # Stop supervising before the pool's owner can stop the pool
            # — a respawn racing the teardown would spawn into a fleet
            # that is being reaped.
            await self._supervisor.stop()
        self._server.close()
        await self._server.wait_closed()
        # In-flight requests (on EVERY connection, not just the one that
        # asked to shut down) finish and ANSWER before any socket closes
        # — re-checked in a loop because a handler mid-read may schedule
        # one more request while we wait.
        while self._request_tasks:
            await asyncio.gather(*list(self._request_tasks), return_exceptions=True)
        # Idle connections sit blocked in readline(); closing their
        # transport unblocks them so their handlers can flush and exit.
        for writer in list(self._connections):
            with contextlib.suppress(Exception):
                writer.close()
        current = asyncio.current_task()
        pending = [t for t in self._conn_tasks if t is not current]
        if pending:
            await asyncio.gather(*pending, return_exceptions=True)
        assert self._pool is not None
        self._pool.shutdown(wait=True)

    def _log_drain_result(self, task: "asyncio.Task") -> None:
        """Done-callback for the held shutdown-triggered drain task:
        retrieves the exception (so the loop never warns about it being
        unretrieved) and logs it; the stored ``_drain_error`` already
        surfaces it to :meth:`serve_until_drained` callers."""
        if task.cancelled():
            return
        exc = task.exception()
        if exc is not None:
            _LOG.error("graceful drain failed: %r", exc)

    # ------------------------------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        assert task is not None
        self._conn_tasks.add(task)
        self._connections.add(writer)
        write_lock = asyncio.Lock()
        pending: Set[asyncio.Task] = set()
        line_no = 0
        try:
            while not self._draining:
                try:
                    line = await reader.readline()
                except (ConnectionError, asyncio.IncompleteReadError):
                    break
                if not line:
                    break
                line_no += 1
                stripped = line.strip()
                if not stripped or stripped.startswith(b"#"):
                    continue
                try:
                    payload = json.loads(stripped)
                except json.JSONDecodeError as exc:
                    await self._send(
                        writer,
                        write_lock,
                        Response.failure(
                            str(line_no),
                            "?",
                            f"line {line_no}: invalid JSON ({exc})",
                            ERR_BAD_REQUEST,
                            line=line_no,
                        ).to_json(),
                    )
                    continue
                is_typed = isinstance(payload, dict)
                kind = payload.get("type") if is_typed else None
                if kind == "shutdown":
                    await self._flush(pending)
                    await self._send(
                        writer,
                        write_lock,
                        {
                            "v": PROTOCOL_VERSION,
                            "id": str(payload.get("id", line_no)),
                            "kind": "shutdown",
                            "ok": True,
                            "result": {"draining": True},
                        },
                    )
                    # Hold the drain task: an untracked ensure_future can
                    # be GC'd mid-flight and swallows any drain failure.
                    task = asyncio.ensure_future(self.drain())
                    self._drain_task = task
                    task.add_done_callback(self._log_drain_result)
                    break
                if kind == "update" or (is_typed and kind is None and "op" in payload):
                    # The update barrier: this connection's own queries
                    # first (ordering), then global exclusivity.  In
                    # router mode the fan-out happens INSIDE the barrier
                    # and before the response: when the client reads the
                    # update's ack, every replica has applied it —
                    # read-your-writes holds across processes.
                    await self._flush(pending)
                    async with self._barrier.update():
                        record = await self._run(payload, line_no)
                        await self._fan_out(payload, line_no, record)
                    await self._send(writer, write_lock, record)
                    continue
                assert self._inflight is not None
                await self._inflight.acquire()  # backpressure: stop reading when full
                self.requests_in_flight += 1
                query = asyncio.ensure_future(
                    self._answer_query(payload, line_no, writer, write_lock)
                )
                pending.add(query)
                query.add_done_callback(pending.discard)
                self._request_tasks.add(query)
                query.add_done_callback(self._request_tasks.discard)
            await self._flush(pending)
        finally:
            self._connections.discard(writer)
            self._conn_tasks.discard(task)
            with contextlib.suppress(Exception):
                if not writer.is_closing():
                    writer.close()

    async def _answer_query(
        self,
        payload,
        line_no: int,
        writer: asyncio.StreamWriter,
        write_lock: asyncio.Lock,
    ) -> None:
        # The balance of _handle_connection's acquire: exactly one
        # release + decrement per admitted query, no matter what the
        # handler or the socket does (the finally also covers a _send
        # that raises because the client disconnected mid-reply).
        try:
            if self._snapshot_reads:
                # MVCC: the query pins its epoch session inside the
                # façade — no barrier, reads never wait for writes.
                record = await self._dispatch(payload, line_no)
            else:
                async with self._barrier.query():
                    record = await self._dispatch(payload, line_no)
            await self._send(writer, write_lock, record)
        finally:
            self.requests_in_flight -= 1
            assert self._inflight is not None
            self._inflight.release()

    async def _run(self, payload, line_no: int) -> Dict:
        """Hand one decoded payload to the façade on the worker pool."""
        loop = asyncio.get_running_loop()
        assert self._pool is not None
        return await loop.run_in_executor(
            self._pool, partial(self.service.handle_json, payload, line=line_no)
        )

    @staticmethod
    def _routes_to_replica(payload) -> bool:
        """Whether a query payload may be served by a worker replica.

        Mirrors :func:`~repro.service.envelopes.parse_request`'s legacy
        dispatch: a bare list and a typeless dict without ``op`` are
        mine requests; updates and stats stay on the router (updates
        mutate the authoritative KB, stats report router telemetry)."""
        if isinstance(payload, list):
            return True
        if not isinstance(payload, dict):
            return False  # malformed; the local façade shapes the error
        kind = payload.get("type")
        if kind is None:
            return "op" not in payload
        return kind in ("mine", "describe")

    async def _dispatch(self, payload, line_no: int) -> Dict:
        """Route one query: replica in router mode, local façade
        otherwise — and always local when the pool cannot answer (every
        replica dead), so scale-out never costs availability."""
        if self._workers is not None and self._routes_to_replica(payload):
            try:
                return await self._workers.request(payload, line_no)
            except WorkerTimeout as exc:
                # The deadline is the latency contract: no local retry
                # (it would double the client-visible worst case), a
                # typed error envelope instead — never a hung client.
                # The wedged replica is already terminated; the
                # supervisor respawns it.
                self.request_timeouts += 1
                _LOG.warning("replica request deadline expired (%s)", exc)
                return Response.failure(
                    request_id_of(payload, line_no),
                    request_kind_of(payload),
                    str(exc),
                    ERR_TIMEOUT,
                    line=line_no,
                ).to_json()
            except WorkerPoolError as exc:
                _LOG.warning("worker pool unavailable (%s); serving locally", exc)
        record = await self._run(payload, line_no)
        if (
            isinstance(payload, dict)
            and payload.get("type") == "stats"
            and record.get("ok")
        ):
            # Serving telemetry rides on the stats envelope: delivery
            # accounting plus the pool's per-replica epochs in router
            # mode (how the smoke client checks fan-out landed).
            record.setdefault("result", {})["server"] = self.telemetry()
        return record

    async def _fan_out(self, payload, line_no: int, record: Dict) -> None:
        """Replicate one applied update to every worker, inside the
        caller's barrier hold.  No-op outside router mode, for failed
        updates, and for ineffective ones (content unchanged ⇒ replicas
        already exact; the router's epoch did not move either)."""
        if self._workers is None or not record.get("ok"):
            return
        if not record.get("result", {}).get("applied"):
            return
        try:
            await self._workers.broadcast_update(
                payload, line_no, expect_epoch=self.service.kb.epoch
            )
        except WorkerPoolError as exc:
            _LOG.warning("update fan-out failed (%s)", exc)

    @staticmethod
    async def _flush(pending: Set[asyncio.Task]) -> None:
        if pending:
            await asyncio.gather(*list(pending), return_exceptions=True)

    async def _send(
        self, writer: asyncio.StreamWriter, write_lock: asyncio.Lock, record: Dict
    ) -> None:
        """Write one response line; a client gone mid-reply is normal.

        Never raises for transport failures: the caller's accounting
        (semaphore, in-flight counter) must settle exactly once whether
        or not the response was deliverable, and a half-dead socket can
        fail in ``write`` as well as in ``drain``.  Undeliverable
        responses are counted in :attr:`responses_dropped`.
        """
        data = json.dumps(record, ensure_ascii=False).encode("utf-8") + b"\n"
        async with write_lock:  # responses from overlapping tasks must not interleave
            if writer.is_closing():
                self.responses_dropped += 1
                return
            try:
                writer.write(data)
                await writer.drain()
            except (ConnectionError, RuntimeError, OSError):
                self.responses_dropped += 1


async def run_server(
    service: MiningService,
    host: str = "127.0.0.1",
    port: int = 8757,
    pool_workers: int = 4,
    max_pending: int = 32,
    ready=None,
    workers: Optional[WorkerPool] = None,
    on_summary=None,
) -> None:
    """Start a server and block until it drains (the CLI entry point).

    *ready*, when given, is called once with the bound ``(host, port)`` —
    the CLI prints the listening line from it so wrappers can wait for
    readiness on stderr.  *workers* routes queries to a process-replica
    pool (see :class:`MiningServer`); its lifecycle stays with the
    caller.  *on_summary*, when given, receives the server's final
    :meth:`~MiningServer.telemetry` after the drain — even a failed one
    — so the CLI can print the shutdown summary.
    """
    server = MiningServer(
        service,
        host=host,
        port=port,
        pool_workers=pool_workers,
        max_pending=max_pending,
        workers=workers,
    )
    await server.start()
    if ready is not None:
        ready((server.host, server.port))
    try:
        await server.serve_until_drained()
    except asyncio.CancelledError:
        await server.drain()
        raise
    finally:
        if on_summary is not None:
            on_summary(server.telemetry())


__all__ = ["MiningServer", "run_server"]
