"""Fleet supervision: heartbeats, crash detection, bounded respawn.

:class:`~repro.service.workers.WorkerPool` detects failure (pipe loss,
request deadlines) but — before this module — only *degraded*: a dead
replica stayed dead, and a fleet under churn shrank monotonically toward
the single-process fallback.  :class:`FleetSupervisor` closes the loop.
It watches every slot with two complementary signals:

* ``process.is_alive()`` — catches **silent crashes**: a replica that
  died between requests never trips a pipe error because nobody was
  talking to it;
* **heartbeats** — a ``ping`` round (subject to the normal request
  deadline) sent to replicas that look alive and are *idle*.  A wedged
  process passes ``is_alive()`` forever; the ping is what exposes it.
  Busy replicas are not pinged — their in-flight request's own deadline
  is the detector, and a second message on the pipe would violate the
  one-round-per-replica framing anyway.

Dead slots are respawned through the pool's three-step cycle, phased so
the update barrier is held only for the cheap parts::

    barrier { bootstrap = pool.prepare_bootstrap() }   # exact image
    pool.respawn(index, bootstrap)                     # slow: spawn+handshake
    barrier { pool.admit(index) }                      # epoch check/resync

The middle step — process spawn, KB rehydration, warm-up — runs outside
the barrier, so updates keep flowing while the replacement boots.  The
final ``admit`` re-checks the epoch under quiescence and wire-resyncs if
updates landed meanwhile, so the replica re-enters dispatch at the
router's *exact* epoch: read-your-writes holds across a restart.

Respawns back off exponentially per slot (``backoff_base * 2**attempts``,
capped at ``backoff_max``) so a replica that dies at boot — bad image,
poisoned bootstrap, chaos plan — cannot hot-loop the spawn path; after
``max_restarts`` failed attempts the slot trips a **circuit breaker**
and joins :attr:`degraded` (visible in ``stats()``, ``telemetry()``, and
the shutdown summary) instead of burning CPU forever.

The supervisor is driven either by its own asyncio task
(:meth:`run` — the server starts one) or by explicit :meth:`poll` calls
(the chaos tests, which want deterministic interleavings, no timers).
"""

from __future__ import annotations

import asyncio
import contextlib
import time
from typing import Callable, Dict, List, Optional, Set

from repro.service.workers import WorkerPool, WorkerPoolError


@contextlib.asynccontextmanager
async def _no_barrier():
    """Stand-in exclusive section for supervising a standalone pool."""
    yield


class FleetSupervisor:
    """Background monitor that keeps a :class:`WorkerPool` at full strength.

    Parameters
    ----------
    pool:
        The pool to supervise.  The supervisor attaches itself as
        ``pool.supervisor`` so the pool's ``stats()`` can report the
        supervision counters.
    exclusive:
        Zero-arg callable returning an async context manager that grants
        exclusive (writer) access to the router KB — the server passes
        its update barrier's ``update``.  Defaults to a no-op gate for
        standalone pools (safe only when nothing mutates the KB
        concurrently).
    heartbeat_interval:
        Seconds between :meth:`run` iterations, and between heartbeat
        pings to any one idle replica.  ``0`` disables the background
        loop (``poll()`` still works when called explicitly).
    max_restarts:
        Failed respawn *attempts* per slot before its circuit breaker
        trips and the slot is abandoned as degraded.
    backoff_base / backoff_max:
        Exponential backoff window between respawn attempts on the same
        slot: ``min(backoff_base * 2**attempts, backoff_max)`` seconds.
    """

    def __init__(
        self,
        pool: WorkerPool,
        exclusive: Optional[Callable[[], "contextlib.AbstractAsyncContextManager"]] = None,
        heartbeat_interval: float = 2.0,
        max_restarts: int = 5,
        backoff_base: float = 0.5,
        backoff_max: float = 30.0,
    ):
        if heartbeat_interval < 0:
            raise ValueError(
                f"heartbeat_interval must be ≥ 0, got {heartbeat_interval}"
            )
        if max_restarts < 1:
            raise ValueError(f"max_restarts must be ≥ 1, got {max_restarts}")
        if backoff_base < 0 or backoff_max < 0:
            raise ValueError("restart backoff must be ≥ 0")
        self.pool = pool
        self._exclusive = exclusive or _no_barrier
        self.heartbeat_interval = heartbeat_interval
        self.max_restarts = max_restarts
        self.backoff_base = backoff_base
        self.backoff_max = backoff_max
        #: Slots whose circuit breaker tripped: max_restarts respawn
        #: attempts failed, no further attempts will be made.
        self.degraded: Set[int] = set()
        #: Lifetime respawn attempts per slot (never reset on success —
        #: the breaker bounds total churn, not churn-since-last-good).
        self._attempts: Dict[int, int] = {}
        #: Monotonic instant before which a slot may not be retried.
        self._next_attempt: Dict[int, float] = {}
        self._last_heartbeat = 0.0
        self._task: Optional[asyncio.Task] = None
        self._stopping = False
        #: Supervision telemetry (restarts live on the pool; these are
        #: the monitor's own observations).
        self.heartbeats = 0
        self.crashes_detected = 0
        self.respawns_failed = 0
        pool.supervisor = self

    # ------------------------------------------------------------------
    # the monitor pass
    # ------------------------------------------------------------------

    async def poll(self, now: Optional[float] = None) -> List[int]:
        """One full supervision pass; returns the slots respawned.

        Deterministic and timer-free — the chaos tests drive recovery by
        calling this directly.  A pass: reap silent crashes
        (``is_alive()``), heartbeat idle live replicas (a wedged one
        trips the request deadline inside the ping and is marked dead),
        then attempt one respawn for every dead slot whose backoff
        window has elapsed and whose breaker has not tripped.
        """
        if now is None:
            now = time.monotonic()
        pool = self.pool
        if pool._stopped or not pool._started:
            return []
        # -- detection: silent crashes first, then wedges via heartbeat.
        for replica in pool._replicas:
            if replica.alive and not replica.process.is_alive():
                self.crashes_detected += 1
                pool._mark_dead(replica)
        if self.heartbeat_interval and (
            now - self._last_heartbeat >= self.heartbeat_interval
        ):
            self._last_heartbeat = now
            await self._heartbeat()
        # -- recovery: bounded respawn of whatever is dead.
        respawned: List[int] = []
        for replica in list(pool._replicas):
            index = replica.index
            if replica.alive or index in self.degraded:
                continue
            if now < self._next_attempt.get(index, 0.0):
                continue
            if await self._respawn_slot(index):
                respawned.append(index)
        return respawned

    async def _heartbeat(self) -> None:
        """Ping idle live replicas; the deadline inside the ping round is
        what catches a wedged-but-alive process."""
        pool = self.pool
        targets = [r for r in pool._replicas if r.alive and r.in_flight == 0]
        if not targets:
            return
        self.heartbeats += 1
        await asyncio.gather(
            *(self._ping_one(replica) for replica in targets),
            return_exceptions=False,
        )

    async def _ping_one(self, replica) -> None:
        try:
            await self.pool._round(replica, {"kind": "ping"})
        except WorkerPoolError:
            pass  # marked dead (and reaped, if it was a timeout)

    async def _respawn_slot(self, index: int) -> bool:
        """One respawn attempt for slot *index*: backoff bookkeeping,
        the barrier-phased bootstrap/respawn/admit cycle, breaker trip
        on exhaustion.  Returns True when the slot is live again."""
        attempts = self._attempts.get(index, 0)
        self._attempts[index] = attempts + 1
        self._next_attempt[index] = time.monotonic() + min(
            self.backoff_base * (2 ** attempts), self.backoff_max
        )
        loop = asyncio.get_running_loop()
        pool = self.pool
        try:
            async with self._exclusive():
                bootstrap = await loop.run_in_executor(
                    pool._executor, pool.prepare_bootstrap
                )
            await loop.run_in_executor(pool._executor, pool.respawn, index, bootstrap)
            async with self._exclusive():
                await loop.run_in_executor(pool._executor, pool.admit, index)
        except WorkerPoolError:
            self.respawns_failed += 1
            if self._attempts[index] >= self.max_restarts:
                self.degraded.add(index)
            return False
        return True

    # ------------------------------------------------------------------
    # background loop
    # ------------------------------------------------------------------

    async def run(self) -> None:
        """The background supervision loop (cancelled by :meth:`stop`)."""
        if not self.heartbeat_interval:
            return
        while not self._stopping:
            await asyncio.sleep(self.heartbeat_interval)
            if self._stopping:
                return
            try:
                await self.poll()
            except WorkerPoolError:
                return  # pool stopped under us mid-pass

    def start(self) -> None:
        """Start the background loop on the running event loop."""
        if self._task is None and self.heartbeat_interval:
            self._task = asyncio.get_running_loop().create_task(
                self.run(), name="remi-supervisor"
            )

    async def stop(self) -> None:
        """Stop the background loop (idempotent; awaits the task)."""
        self._stopping = True
        if self._task is not None:
            self._task.cancel()
            with contextlib.suppress(asyncio.CancelledError):
                await self._task
            self._task = None

    # ------------------------------------------------------------------
    # telemetry
    # ------------------------------------------------------------------

    def stats(self) -> Dict:
        return {
            "heartbeat_interval": self.heartbeat_interval,
            "max_restarts": self.max_restarts,
            "heartbeats": self.heartbeats,
            "crashes_detected": self.crashes_detected,
            "respawns_failed": self.respawns_failed,
            "attempts": {str(k): v for k, v in sorted(self._attempts.items())},
            "degraded": sorted(self.degraded),
        }

    def __repr__(self) -> str:
        return (
            f"FleetSupervisor(pool={self.pool!r}, "
            f"restarts={self.pool.restarts}, degraded={sorted(self.degraded)})"
        )


__all__ = ["FleetSupervisor"]
