"""Deterministic fault injection: the chaos harness for the worker fleet.

Every recovery path in the supervision layer (:mod:`repro.service.supervisor`)
is untestable without a way to make the fleet fail *on purpose, the same
way, every time*.  A :class:`FaultPlan` is that instrument: a seeded,
replayable schedule of named **injection points** threaded through
:class:`~repro.service.workers.WorkerPool`, the worker main loop, and
:func:`repro.kb.wire.kb_to_bytes`.  A rule fires at an exact
``(point, occurrence-index)`` coordinate — the Nth time execution passes
that point — so a failure observed once is a failure reproducible
forever, and a chaos test asserts recovery from a *specific* fault, not
from whatever the scheduler happened to produce.

Injection points
----------------

===================== ================================================
``kill-before-ready``  the worker process exits hard before sending
                       its ready handshake (spawn-time crash)
``kill-mid-request``   the worker exits hard on receiving a request,
                       before computing or replying (crash mid-flight)
``hang-mid-request``   the worker sleeps ``delay`` seconds before
                       answering (a wedged replica: alive but silent)
``drop-response``      the worker swallows one request and never
                       replies (a lost pipe message)
``delay-response``     the worker answers after sleeping ``delay``
                       seconds (a slow pipe message)
``corrupt-wire``       one framed wire/resync image has a byte flipped
                       (seed-deterministic position), so rehydration
                       raises :class:`~repro.kb.wire.WireError`
``die-mid-update``     the worker applies an update envelope, then
                       exits hard before acking (death mid fan-out)
===================== ================================================

Occurrence counters live per plan *instance*: the parent pool counts
parent-side points (``corrupt-wire``), and each worker process rebuilds
its own plan from JSON at spawn (counters start at zero per process), so
a rule scoped to ``worker=1, occurrence=2`` means "the third time worker
1's loop passes that point".  The plan crosses the spawn boundary as
plain JSON — no pickle, same rule as the wire format.

>>> plan = FaultPlan([FaultRule(HANG_MID_REQUEST, occurrence=0, worker=0)])
>>> pool = WorkerPool(kb, count=2, request_timeout=1.0, faults=plan)
"""

from __future__ import annotations

import random
import threading
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

KILL_BEFORE_READY = "kill-before-ready"
KILL_MID_REQUEST = "kill-mid-request"
HANG_MID_REQUEST = "hang-mid-request"
DROP_RESPONSE = "drop-response"
DELAY_RESPONSE = "delay-response"
CORRUPT_WIRE = "corrupt-wire"
DIE_MID_UPDATE = "die-mid-update"

#: Every named injection point, in documentation order.
FAULT_POINTS = (
    KILL_BEFORE_READY,
    KILL_MID_REQUEST,
    HANG_MID_REQUEST,
    DROP_RESPONSE,
    DELAY_RESPONSE,
    CORRUPT_WIRE,
    DIE_MID_UPDATE,
)

#: Exit code a fault-killed worker dies with (distinguishable from a real
#: crash's traceback exit 1 when triaging chaos logs).
FAULT_EXIT_CODE = 43


class FaultPlanError(ValueError):
    """A rule or serialized plan that names no known injection point."""


@dataclass(frozen=True)
class FaultRule:
    """One scheduled fault: fire at *point*'s Nth *occurrence*.

    ``worker`` scopes the rule to one replica index (``None`` matches
    any); ``delay`` is the sleep for ``hang-mid-request`` /
    ``delay-response`` (a hang defaults long enough that the request
    deadline always expires first).
    """

    point: str
    occurrence: int = 0
    worker: Optional[int] = None
    delay: float = 3600.0

    def __post_init__(self) -> None:
        if self.point not in FAULT_POINTS:
            raise FaultPlanError(
                f"unknown injection point {self.point!r}; "
                f"use one of {', '.join(FAULT_POINTS)}"
            )
        if self.occurrence < 0:
            raise FaultPlanError(f"occurrence must be ≥ 0, got {self.occurrence}")
        if self.delay < 0:
            raise FaultPlanError(f"delay must be ≥ 0, got {self.delay}")

    def to_json(self) -> Dict:
        record: Dict = {"point": self.point, "occurrence": self.occurrence}
        if self.worker is not None:
            record["worker"] = self.worker
        if self.delay != 3600.0:
            record["delay"] = self.delay
        return record

    @classmethod
    def from_json(cls, record: Dict) -> "FaultRule":
        return cls(
            point=record["point"],
            occurrence=int(record.get("occurrence", 0)),
            worker=record.get("worker"),
            delay=float(record.get("delay", 3600.0)),
        )


class FaultPlan:
    """A seeded, deterministic schedule of :class:`FaultRule`\\ s.

    Thread-safe (the parent pool fires points from executor threads).
    ``fired`` records every ``(point, occurrence, worker)`` that matched
    a rule, so tests can assert the exact faults that actually happened.
    """

    def __init__(self, rules: Iterable[FaultRule] = (), seed: int = 0):
        self.rules: Tuple[FaultRule, ...] = tuple(rules)
        self.seed = seed
        self._counts: Dict[str, int] = {}
        self._lock = threading.Lock()
        self.fired: List[Tuple[str, int, Optional[int]]] = []

    @classmethod
    def single(
        cls,
        point: str,
        occurrence: int = 0,
        worker: Optional[int] = None,
        delay: float = 3600.0,
        seed: int = 0,
    ) -> "FaultPlan":
        """The common one-rule plan, spelled in one call."""
        return cls([FaultRule(point, occurrence, worker, delay)], seed=seed)

    @classmethod
    def seeded(
        cls,
        seed: int,
        points: Sequence[str] = FAULT_POINTS,
        max_occurrence: int = 3,
        delay: float = 0.05,
    ) -> "FaultPlan":
        """A deterministic random schedule: one rule per *point*, each at
        a seed-chosen occurrence in ``[0, max_occurrence)`` — the sweep
        generator for the chaos differential gate (same seed, same
        schedule, forever)."""
        # A str seed hashes deterministically (sha512) — a tuple would go
        # through hash(), which PYTHONHASHSEED randomizes per process.
        rng = random.Random(f"remi-fault-plan:{seed}")
        rules = [
            FaultRule(
                point,
                occurrence=rng.randrange(max_occurrence),
                delay=delay if point == DELAY_RESPONSE else 3600.0,
            )
            for point in points
        ]
        return cls(rules, seed=seed)

    # ------------------------------------------------------------------

    def fire(self, point: str, worker: Optional[int] = None) -> Optional[FaultRule]:
        """Record one pass over *point* and return the matching rule, if
        this exact occurrence is scheduled (else ``None``).

        The occurrence counter advances whether or not a rule matched —
        that is what makes schedules replayable.
        """
        if point not in FAULT_POINTS:
            raise FaultPlanError(f"unknown injection point {point!r}")
        with self._lock:
            occurrence = self._counts.get(point, 0)
            self._counts[point] = occurrence + 1
            for rule in self.rules:
                if rule.point != point or rule.occurrence != occurrence:
                    continue
                if rule.worker is not None and worker is not None and rule.worker != worker:
                    continue
                self.fired.append((point, occurrence, worker))
                return rule
        return None

    def corrupt_frame(self, data: bytes) -> bytes:
        """The ``kb_to_bytes(faults=...)`` hook: pass framed wire bytes
        through the ``corrupt-wire`` point, flipping one seed-chosen byte
        when this occurrence is scheduled (rehydration then raises a
        typed :class:`~repro.kb.wire.WireError`, never builds a wrong
        KB)."""
        rule = self.fire(CORRUPT_WIRE)
        if rule is None or not data:
            return data
        rng = random.Random(f"{self.seed}:{CORRUPT_WIRE}:{rule.occurrence}")
        index = rng.randrange(len(data))
        corrupted = bytearray(data)
        corrupted[index] ^= 1 + rng.randrange(255)
        return bytes(corrupted)

    # ------------------------------------------------------------------

    def to_json(self) -> Dict:
        return {"seed": self.seed, "rules": [rule.to_json() for rule in self.rules]}

    @classmethod
    def from_json(cls, record: Dict) -> "FaultPlan":
        if not isinstance(record, dict) or "rules" not in record:
            raise FaultPlanError(f"not a serialized FaultPlan: {record!r}")
        return cls(
            (FaultRule.from_json(rule) for rule in record["rules"]),
            seed=int(record.get("seed", 0)),
        )

    def __repr__(self) -> str:
        return f"FaultPlan(rules={len(self.rules)}, seed={self.seed}, fired={len(self.fired)})"


__all__ = [
    "CORRUPT_WIRE",
    "DELAY_RESPONSE",
    "DIE_MID_UPDATE",
    "DROP_RESPONSE",
    "FAULT_EXIT_CODE",
    "FAULT_POINTS",
    "FaultPlan",
    "FaultPlanError",
    "FaultRule",
    "HANG_MID_REQUEST",
    "KILL_BEFORE_READY",
    "KILL_MID_REQUEST",
]
