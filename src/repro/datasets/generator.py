"""The Zipf-driven synthetic triple generator.

Given a :class:`~repro.datasets.schema.KBSchema`, :func:`generate`:

1. mints the instances of every class (``<Class>_<i>`` IRIs) plus
   ``rdf:type`` and ``rdfs:label`` facts;
2. emits each predicate's facts: participating subjects are chosen
   uniformly, objects by a Zipf draw over the target class so that low
   ranks (prominent entities) absorb most links — the power-law regime
   the paper's Eq. 1 compression relies on;
3. attaches ``detail`` facts to blank-node objects so that the §3.5.2
   "hide the blank node" path derivation has something to find;
4. optionally materializes inverse predicates for the top-1 % entities
   (§4), exactly as the paper preprocesses DBpedia and Wikidata.

Everything is deterministic in the seed.
"""

from __future__ import annotations

import bisect
import random
from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from repro.datasets.schema import ClassSpec, KBSchema, PredicateSpec
from repro.kb.inverse import materialize_inverses
from repro.kb.namespaces import Namespace, RDF_TYPE, RDFS_LABEL
from repro.kb.store import KnowledgeBase
from repro.kb.terms import BlankNode, IRI, Literal
from repro.kb.triples import Triple


@dataclass
class GeneratedKB:
    """The generator's output: the KB plus its entity directory."""

    kb: KnowledgeBase
    schema: KBSchema
    instances: Dict[str, List[IRI]] = field(default_factory=dict)
    class_iris: Dict[str, IRI] = field(default_factory=dict)
    predicate_iris: Dict[str, IRI] = field(default_factory=dict)

    def instances_of(self, class_name: str) -> List[IRI]:
        return self.instances[class_name]

    def predicate(self, name: str) -> IRI:
        return self.predicate_iris[name]


class _ZipfSampler:
    """Draws indices 0..n-1 with probability ∝ 1/(rank+1)^s, O(log n) per draw."""

    def __init__(self, n: int, exponent: float):
        if n < 1:
            raise ValueError("sampler needs at least one item")
        weights = [1.0 / ((rank + 1) ** exponent) for rank in range(n)]
        self._cumulative: List[float] = []
        total = 0.0
        for w in weights:
            total += w
            self._cumulative.append(total)
        self._total = total

    def sample(self, rng: random.Random) -> int:
        point = rng.random() * self._total
        return bisect.bisect_left(self._cumulative, point)


def _mint_instances(
    schema: KBSchema, spec: ClassSpec, namespace: Namespace, rng: random.Random
) -> List[IRI]:
    prefix = spec.label_prefix or spec.name
    return [namespace.term(f"{prefix}_{i}") for i in range(spec.count)]


def generate(schema: KBSchema, seed: int = 42) -> GeneratedKB:
    """Generate a KB from *schema*, deterministically in *seed*."""
    rng = random.Random(seed)
    entity_ns = Namespace(schema.entity_base)
    predicate_ns = Namespace(schema.predicate_base)
    kb = KnowledgeBase(name=schema.name)
    out = GeneratedKB(kb=kb, schema=schema)

    # --- instances, types, labels -------------------------------------
    for spec in schema.classes:
        class_iri = entity_ns.term(spec.name)
        out.class_iris[spec.name] = class_iri
        instances = _mint_instances(schema, spec, entity_ns, rng)
        out.instances[spec.name] = instances
        for i, instance in enumerate(instances):
            kb.add(Triple(instance, RDF_TYPE, class_iri))
            label = f"{(spec.label_prefix or spec.name).replace('_', ' ')} {i}"
            kb.add(Triple(instance, RDFS_LABEL, Literal(label, lang="en")))
        kb.add(Triple(class_iri, RDFS_LABEL, Literal(spec.name, lang="en")))

    # --- facts ---------------------------------------------------------
    samplers: Dict[tuple, _ZipfSampler] = {}
    blank_counter = 0
    for spec in schema.classes:
        subjects = out.instances[spec.name]
        for predicate_spec in spec.predicates:
            predicate = predicate_ns.term(predicate_spec.name)
            out.predicate_iris[predicate_spec.name] = predicate
            kb.add(Triple(predicate, RDFS_LABEL, Literal(predicate_spec.name, lang="en")))
            blank_counter = _emit_predicate(
                kb, out, subjects, predicate, predicate_spec, samplers, rng,
                predicate_ns, blank_counter,
            )

    # --- inverse materialization (§4) ----------------------------------
    if schema.inverse_top_fraction > 0:
        materialize_inverses(
            kb,
            top_fraction=schema.inverse_top_fraction,
            skip_predicates={RDF_TYPE, RDFS_LABEL},
        )
    return out


def _emit_predicate(
    kb: KnowledgeBase,
    out: GeneratedKB,
    subjects: Sequence[IRI],
    predicate: IRI,
    spec: PredicateSpec,
    samplers: Dict[tuple, _ZipfSampler],
    rng: random.Random,
    predicate_ns: Namespace,
    blank_counter: int,
) -> int:
    targets = None
    if spec.target not in ("@literal", "@blank"):
        targets = out.instances[spec.target]
        if not targets:
            return blank_counter
        key = (spec.target, spec.zipf)
        if key not in samplers:
            samplers[key] = _ZipfSampler(len(targets), spec.zipf)
        sampler = samplers[key]
    detail_predicate = predicate_ns.term(f"{spec.name}Detail")

    for subject in subjects:
        if rng.random() > spec.participation:
            continue
        count = rng.randint(*spec.fanout)
        seen: set = set()
        for _ in range(count):
            if spec.target == "@literal":
                value = Literal(str(rng.randint(1, 100_000)))
                kb.add(Triple(subject, predicate, value))
            elif spec.target == "@blank":
                blank_counter += 1
                blank = BlankNode(f"b{blank_counter}")
                kb.add(Triple(subject, predicate, blank))
                # Give paths something to hide behind (§3.5.2): the blank
                # node points at a real entity of some class.
                classes = [c for c in out.instances.values() if c]
                if classes:
                    pool = rng.choice(classes)
                    kb.add(Triple(blank, detail_predicate, rng.choice(pool)))
            else:
                for _attempt in range(8):
                    obj = targets[sampler.sample(rng)]
                    if obj == subject:
                        continue
                    if spec.functional and obj in seen:
                        continue
                    seen.add(obj)
                    kb.add(Triple(subject, predicate, obj))
                    break
    return blank_counter
