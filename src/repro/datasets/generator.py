"""The Zipf-driven synthetic triple generator.

Given a :class:`~repro.datasets.schema.KBSchema`, :func:`generate`:

1. mints the instances of every class (``<Class>_<i>`` IRIs) plus
   ``rdf:type`` and ``rdfs:label`` facts;
2. emits each predicate's facts: participating subjects are chosen
   uniformly, objects by a Zipf draw over the target class so that low
   ranks (prominent entities) absorb most links — the power-law regime
   the paper's Eq. 1 compression relies on;
3. attaches ``detail`` facts to blank-node objects so that the §3.5.2
   "hide the blank node" path derivation has something to find;
4. optionally materializes inverse predicates for the top-1 % entities
   (§4), exactly as the paper preprocesses DBpedia and Wikidata.

Everything is deterministic in the seed.

The fact emission is a generator pipeline, so the same code serves two
consumers: :func:`generate` drains it into an in-memory store, and
:func:`iter_schema_facts` / :func:`write_schema_ntriples` stream it
straight to disk — million-fact N-Triples dumps for ``remi build-image``
without ever holding the KB in RAM.  Both paths draw from one
:class:`random.Random` in one order, so a streamed dump and an in-memory
build from the same seed describe the same KB.
"""

from __future__ import annotations

import bisect
import itertools
import random
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterator, List, Sequence

from repro.datasets.schema import ClassSpec, KBSchema, PredicateSpec
from repro.kb.inverse import materialize_inverses
from repro.kb.namespaces import Namespace, RDF_TYPE, RDFS_LABEL
from repro.kb.store import KnowledgeBase
from repro.kb.terms import BlankNode, IRI, Literal
from repro.kb.triples import Triple


@dataclass
class GeneratedKB:
    """The generator's output: the KB plus its entity directory."""

    kb: KnowledgeBase
    schema: KBSchema
    instances: Dict[str, List[IRI]] = field(default_factory=dict)
    class_iris: Dict[str, IRI] = field(default_factory=dict)
    predicate_iris: Dict[str, IRI] = field(default_factory=dict)

    def instances_of(self, class_name: str) -> List[IRI]:
        return self.instances[class_name]

    def predicate(self, name: str) -> IRI:
        return self.predicate_iris[name]


class _ZipfSampler:
    """Draws indices 0..n-1 with probability ∝ 1/(rank+1)^s, O(log n) per draw."""

    def __init__(self, n: int, exponent: float):
        if n < 1:
            raise ValueError("sampler needs at least one item")
        weights = [1.0 / ((rank + 1) ** exponent) for rank in range(n)]
        self._cumulative: List[float] = []
        total = 0.0
        for w in weights:
            total += w
            self._cumulative.append(total)
        self._total = total

    def sample(self, rng: random.Random) -> int:
        point = rng.random() * self._total
        return bisect.bisect_left(self._cumulative, point)


def _mint_instances(spec: ClassSpec, namespace: Namespace) -> List[IRI]:
    prefix = spec.label_prefix or spec.name
    return [namespace.term(f"{prefix}_{i}") for i in range(spec.count)]


def _directory(schema: KBSchema):
    """Mint every class IRI and instance list (RNG-free, so both the
    in-memory and the streaming path can build it up front)."""
    entity_ns = Namespace(schema.entity_base)
    class_iris = {spec.name: entity_ns.term(spec.name) for spec in schema.classes}
    instances = {spec.name: _mint_instances(spec, entity_ns) for spec in schema.classes}
    return class_iris, instances


def _iter_base_facts(
    schema: KBSchema,
    class_iris: Dict[str, IRI],
    instances: Dict[str, List[IRI]],
) -> Iterator[Triple]:
    """Types and labels for every minted instance (RNG-free)."""
    for spec in schema.classes:
        class_iri = class_iris[spec.name]
        for i, instance in enumerate(instances[spec.name]):
            yield Triple(instance, RDF_TYPE, class_iri)
            label = f"{(spec.label_prefix or spec.name).replace('_', ' ')} {i}"
            yield Triple(instance, RDFS_LABEL, Literal(label, lang="en"))
        yield Triple(class_iri, RDFS_LABEL, Literal(spec.name, lang="en"))


def _iter_predicate_facts(
    schema: KBSchema,
    instances: Dict[str, List[IRI]],
    rng: random.Random,
    predicate_iris: Dict[str, IRI],
) -> Iterator[Triple]:
    """Every predicate's facts, in schema order, one shared RNG stream.

    Consumption is strictly sequential in both consumers, so the draw
    sequence — and therefore the emitted facts — is identical whether
    the triples land in a store or on disk.  Fills *predicate_iris* as
    it goes (the directory the in-memory path exposes).
    """
    predicate_ns = Namespace(schema.predicate_base)
    samplers: Dict[tuple, _ZipfSampler] = {}
    blanks = itertools.count(1)
    for spec in schema.classes:
        subjects = instances[spec.name]
        for predicate_spec in spec.predicates:
            predicate = predicate_ns.term(predicate_spec.name)
            predicate_iris[predicate_spec.name] = predicate
            yield Triple(predicate, RDFS_LABEL, Literal(predicate_spec.name, lang="en"))
            yield from _emit_predicate(
                instances, subjects, predicate, predicate_spec, samplers, rng,
                predicate_ns, blanks,
            )


def generate(schema: KBSchema, seed: int = 42) -> GeneratedKB:
    """Generate a KB from *schema*, deterministically in *seed*."""
    rng = random.Random(seed)
    kb = KnowledgeBase(name=schema.name)
    out = GeneratedKB(kb=kb, schema=schema)
    out.class_iris, out.instances = _directory(schema)

    for triple in _iter_base_facts(schema, out.class_iris, out.instances):
        kb.add(triple)
    for triple in _iter_predicate_facts(schema, out.instances, rng, out.predicate_iris):
        kb.add(triple)

    # --- inverse materialization (§4) ----------------------------------
    if schema.inverse_top_fraction > 0:
        materialize_inverses(
            kb,
            top_fraction=schema.inverse_top_fraction,
            skip_predicates={RDF_TYPE, RDFS_LABEL},
        )
    return out


def iter_schema_facts(schema: KBSchema, seed: int = 42) -> Iterator[Triple]:
    """Stream the schema's facts without materializing a store.

    Yields the exact fact sequence :func:`generate` feeds its KB —
    same seed, same RNG draw order — so the streamed set equals the
    in-memory KB's triples, with two bounded-memory caveats:

    * duplicates may appear (a store's ``add`` dedups; a stream cannot
      without holding everything seen — every downstream consumer, KB
      constructors and the image builder alike, dedups on ingest);
    * inverse materialization (§4) is skipped: it needs global object
      frequencies, i.e. the whole KB.  A streamed dump matches
      ``generate`` on a schema with ``inverse_top_fraction=0``.
    """
    rng = random.Random(seed)
    class_iris, instances = _directory(schema)
    yield from _iter_base_facts(schema, class_iris, instances)
    yield from _iter_predicate_facts(schema, instances, rng, {})


def write_schema_ntriples(schema: KBSchema, path: "str | Path", seed: int = 42) -> int:
    """Stream a schema's facts straight to an N-Triples file.

    Peak memory is O(schema directory), not O(facts) — the million-fact
    feed for ``remi build-image``.  Returns the statement count.
    """
    from repro.kb.ntriples import write_ntriples_file

    return write_ntriples_file(iter_schema_facts(schema, seed), path)


def _emit_predicate(
    instances: Dict[str, List[IRI]],
    subjects: Sequence[IRI],
    predicate: IRI,
    spec: PredicateSpec,
    samplers: Dict[tuple, _ZipfSampler],
    rng: random.Random,
    predicate_ns: Namespace,
    blanks: "itertools.count",
) -> Iterator[Triple]:
    targets = None
    if spec.target not in ("@literal", "@blank"):
        targets = instances[spec.target]
        if not targets:
            return
        key = (spec.target, spec.zipf)
        if key not in samplers:
            samplers[key] = _ZipfSampler(len(targets), spec.zipf)
        sampler = samplers[key]
    detail_predicate = predicate_ns.term(f"{spec.name}Detail")

    for subject in subjects:
        if rng.random() > spec.participation:
            continue
        count = rng.randint(*spec.fanout)
        seen: set = set()
        for _ in range(count):
            if spec.target == "@literal":
                value = Literal(str(rng.randint(1, 100_000)))
                yield Triple(subject, predicate, value)
            elif spec.target == "@blank":
                blank = BlankNode(f"b{next(blanks)}")
                yield Triple(subject, predicate, blank)
                # Give paths something to hide behind (§3.5.2): the blank
                # node points at a real entity of some class.
                classes = [c for c in instances.values() if c]
                if classes:
                    pool = rng.choice(classes)
                    yield Triple(blank, detail_predicate, rng.choice(pool))
            else:
                for _attempt in range(8):
                    obj = targets[sampler.sample(rng)]
                    if obj == subject:
                        continue
                    if spec.functional and obj in seen:
                        continue
                    seen.add(obj)
                    yield Triple(subject, predicate, obj)
                    break
