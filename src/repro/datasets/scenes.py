"""Small hand-built KBs, including the paper's running examples.

These serve three purposes: deterministic unit-test fixtures, runnable
example inputs, and documentation of the paper's own anecdotes:

* :func:`rennes_nantes_scene` — Figure 1's search space: Rennes and Nantes
  share ``belongedTo(x, Brittany)``, ``mayor(x, y) ∧ party(y, Socialist)``
  and ``placeOf(x, Epitech)``;
* :func:`south_america_scene` — the §2.2.2 example: Guyana and Suriname
  are the South American countries with a Germanic official language;
* :func:`einstein_scene` — the §3.2 motivation: Johann J. Müller is "the
  supervisor of the supervisor of Albert Einstein";
* :func:`france_scene` — Paris/France/Voltaire, the §3.1 anecdotes,
  including the DBpedia noise (Paris is also the capital of the former
  Kingdom of France) that §4.1.3 discusses.
"""

from __future__ import annotations

from repro.kb.namespaces import EX, RDF_TYPE, RDFS_LABEL
from repro.kb.store import KnowledgeBase
from repro.kb.terms import Literal
from repro.kb.triples import Triple


def _label(kb: KnowledgeBase, term, text: str) -> None:
    kb.add(Triple(term, RDFS_LABEL, Literal(text, lang="en")))


def rennes_nantes_scene() -> KnowledgeBase:
    """The Figure 1 scene: French cities, mayors and parties."""
    kb = KnowledgeBase(name="rennes-nantes")
    cities = {
        "Rennes": dict(region="Brittany", mayor="Appere", party="Socialist", school="Epitech"),
        "Nantes": dict(region="Brittany", mayor="Rolland", party="Socialist", school="Epitech"),
        "Brest": dict(region="Brittany", mayor="Cuillandre", party="Socialist", school=None),
        "Lyon": dict(region="Rhone", mayor="Doucet", party="Green", school="Epitech"),
        "Paris": dict(region="IleDeFrance", mayor="Hidalgo", party="Socialist", school="Epitech"),
        "Marseille": dict(region="Provence", mayor="Payan", party="Socialist", school=None),
    }
    for name, facts in cities.items():
        city = EX[name]
        kb.add(Triple(city, RDF_TYPE, EX.City))
        _label(kb, city, name)
        kb.add(Triple(city, EX.inRegion, EX[facts["region"]]))
        kb.add(Triple(city, EX.mayor, EX[facts["mayor"]]))
        kb.add(Triple(EX[facts["mayor"]], EX.party, EX[facts["party"]]))
        if facts["school"]:
            kb.add(Triple(EX[facts["school"]], EX.campusIn, city))
            kb.add(Triple(city, EX.placeOf, EX[facts["school"]]))
    # Rennes and Nantes (and Brest) historically belonged to Brittany.
    for name in ("Rennes", "Nantes", "Brest"):
        kb.add(Triple(EX[name], EX.belongedTo, EX.Brittany))
    _label(kb, EX.Brittany, "Brittany")
    _label(kb, EX.Socialist, "Socialist Party")
    _label(kb, EX.Epitech, "Epitech")
    _label(kb, EX.mayor, "mayor")
    _label(kb, EX.party, "party")
    _label(kb, EX.belongedTo, "belonged to")
    return kb


def south_america_scene() -> KnowledgeBase:
    """§2.2.2: Guyana and Suriname — Germanic official language in S. America."""
    kb = KnowledgeBase(name="south-america")
    countries = {
        "Guyana": ("SouthAmerica", "English", "Germanic"),
        "Suriname": ("SouthAmerica", "Dutch", "Germanic"),
        "Brazil": ("SouthAmerica", "Portuguese", "Romance"),
        "Argentina": ("SouthAmerica", "Spanish", "Romance"),
        "Peru": ("SouthAmerica", "Spanish", "Romance"),
        "Germany": ("Europe", "German", "Germanic"),
        "Netherlands": ("Europe", "Dutch", "Germanic"),
        "France": ("Europe", "French", "Romance"),
    }
    for name, (continent, language, family) in countries.items():
        country = EX[name]
        kb.add(Triple(country, RDF_TYPE, EX.Country))
        _label(kb, country, name)
        kb.add(Triple(country, EX["in"], EX[continent]))
        kb.add(Triple(country, EX.officialLanguage, EX[language]))
        kb.add(Triple(EX[language], EX.langFamily, EX[family]))
    _label(kb, EX.SouthAmerica, "South America")
    _label(kb, EX.Germanic, "Germanic")
    return kb


def einstein_scene() -> KnowledgeBase:
    """§3.2: Müller supervised Kleiner, who supervised Einstein.

    The scene is built so that the paper's argument holds quantitatively:
    Kleiner is an *obscure* object of ``supervisorOf`` (many more famous
    students rank above him), while Einstein is the KB's most prominent
    entity — so the two-atom path through Einstein encodes in fewer bits
    than the direct single atom through Kleiner.
    """
    kb = KnowledgeBase(name="einstein")
    famous_students = ["Pauli", "Heisenberg", "Fermi", "Dirac", "Born", "Sommerfeld"]
    chain = [
        ("Mueller", "Kleiner"),
        ("Kleiner", "Einstein"),
        ("Weber", "Kleiner"),
    ] + [(f"Prof{i}", student) for i, student in enumerate(famous_students)]
    for supervisor, student in chain:
        kb.add(Triple(EX[supervisor], EX.supervisorOf, EX[student]))
    people = sorted({name for pair in chain for name in pair} | {"Bohr", "Curie"})
    for person in people:
        kb.add(Triple(EX[person], RDF_TYPE, EX.Physicist))
        _label(kb, EX[person], person)
    # Einstein is by far the most prominent entity: many facts mention him.
    for award in ("Nobel", "CopleyMedal", "MatteucciMedal", "PlanckMedal"):
        kb.add(Triple(EX.Einstein, EX.award, EX[award]))
    for admirer in ("Bohr", "Curie", "Pauli", "Heisenberg", "Dirac", "Born"):
        kb.add(Triple(EX[admirer], EX.influencedBy, EX.Einstein))
    kb.add(Triple(EX.Einstein, EX.fieldOf, EX.Relativity))
    kb.add(Triple(EX.Einstein, EX.bornIn, EX.Ulm))
    # The famous students are clearly more prominent than Kleiner too.
    for student in famous_students:
        kb.add(Triple(EX[student], EX.award, EX.Nobel))
        kb.add(Triple(EX[student], EX.fieldOf, EX.QuantumMechanics))
    kb.add(Triple(EX.Kleiner, EX.bornIn, EX.Zurich))
    kb.add(Triple(EX.Mueller, EX.bornIn, EX.Zurich))
    _label(kb, EX.supervisorOf, "supervisor of")
    _label(kb, EX.Einstein, "Albert Einstein")
    return kb


def france_scene() -> KnowledgeBase:
    """§3.1 anecdotes: Paris, France, Voltaire — with the DBpedia noise."""
    kb = KnowledgeBase(name="france")
    kb.add(Triple(EX.Paris, RDF_TYPE, EX.City))
    kb.add(Triple(EX.Paris, EX.capitalOf, EX.France))
    # The noise §4.1.3 mentions: Paris is also the capital of the former
    # Kingdom of France, so capitalOf⁻¹(France, x) is NOT an RE for Paris'
    # inverse direction — and France cannot be described via its capital.
    kb.add(Triple(EX.Paris, EX.capitalOf, EX.KingdomOfFrance))
    kb.add(Triple(EX.Paris, EX.birthPlaceOf, EX.Voltaire))
    kb.add(Triple(EX.Paris, EX.restingPlaceOf, EX.VictorHugo))
    kb.add(Triple(EX.EiffelTower, EX.locatedIn, EX.Paris))
    for city in ("Paris", "Lyon", "Marseille", "Toulouse", "Nice"):
        kb.add(Triple(EX[city], RDF_TYPE, EX.City))
        kb.add(Triple(EX[city], EX.cityIn, EX.France))
        _label(kb, EX[city], city)
    kb.add(Triple(EX.Versailles, EX.cityIn, EX.France))
    kb.add(Triple(EX.Versailles, RDF_TYPE, EX.City))
    for country in ("France", "Germany", "Spain", "Italy"):
        kb.add(Triple(EX[country], RDF_TYPE, EX.Country))
        _label(kb, EX[country], country)
    kb.add(Triple(EX.Berlin, EX.capitalOf, EX.Germany))
    kb.add(Triple(EX.Madrid, EX.capitalOf, EX.Spain))
    kb.add(Triple(EX.Rome, EX.capitalOf, EX.Italy))
    _label(kb, EX.capitalOf, "capital of")
    _label(kb, EX.EiffelTower, "Eiffel Tower")
    _label(kb, EX.Voltaire, "Voltaire")
    return kb
