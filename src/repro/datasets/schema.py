"""Declarative schema model for the synthetic KB generators.

A :class:`KBSchema` is a set of :class:`ClassSpec`\\ s; each class declares
how many instances it has and which :class:`PredicateSpec`\\ s its
instances emit.  The generator (:mod:`repro.datasets.generator`) turns a
schema into triples.

The knobs mirror the statistics that drive REMI's behaviour:

* ``participation`` — share of instances carrying the predicate at all
  (KB *incompleteness*, which §4.1.3 highlights as a major factor);
* ``fanout`` — facts per participating subject (multi-valued predicates);
* ``zipf`` — skew of object popularity: high values concentrate facts on
  few prominent objects (the power-law regime Eq. 1 assumes).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple


@dataclass(frozen=True)
class PredicateSpec:
    """One predicate emitted by instances of a class.

    Attributes
    ----------
    name:
        Local name of the predicate IRI (e.g. ``"birthPlace"``).
    target:
        Name of the object class, or ``"@literal"`` for literal-valued
        predicates, or ``"@blank"`` for blank-node-valued ones (these
        exercise the §3.5.2 blank-node pruning path: each blank node also
        receives ``detail`` facts that paths can "hide" behind).
    participation:
        Probability that an instance carries the predicate at all.
    fanout:
        ``(min, max)`` facts per participating subject, sampled uniformly.
    zipf:
        Zipf exponent for object selection within the target class
        (0 = uniform; 1–1.3 ≈ natural-language-like skew).
    functional:
        Functional predicates never repeat an object for one subject.
    """

    name: str
    target: str
    participation: float = 1.0
    fanout: Tuple[int, int] = (1, 1)
    zipf: float = 1.0
    functional: bool = True

    def __post_init__(self) -> None:
        if not 0.0 <= self.participation <= 1.0:
            raise ValueError(f"participation must be in [0,1], got {self.participation}")
        low, high = self.fanout
        if low < 1 or high < low:
            raise ValueError(f"fanout must be 1 ≤ min ≤ max, got {self.fanout}")
        if self.zipf < 0:
            raise ValueError(f"zipf exponent must be ≥ 0, got {self.zipf}")


@dataclass(frozen=True)
class ClassSpec:
    """A class of entities: instance count plus outgoing predicates."""

    name: str
    count: int
    predicates: Tuple[PredicateSpec, ...] = ()
    #: Classes whose names label instances "Name_<i>" get readable labels.
    label_prefix: Optional[str] = None

    def __post_init__(self) -> None:
        if self.count < 0:
            raise ValueError(f"class count must be ≥ 0, got {self.count}")
        names = [p.name for p in self.predicates]
        if len(names) != len(set(names)):
            raise ValueError(f"duplicate predicate names in class {self.name}")


@dataclass(frozen=True)
class KBSchema:
    """A complete generator specification."""

    name: str
    classes: Tuple[ClassSpec, ...]
    #: Fraction of top entities to materialize inverse predicates for
    #: (§4: top 1 % most frequent).
    inverse_top_fraction: float = 0.01
    #: IRI namespace bases for entities and predicates.
    entity_base: str = "http://example.org/resource/"
    predicate_base: str = "http://example.org/ontology/"

    def class_named(self, name: str) -> ClassSpec:
        for spec in self.classes:
            if spec.name == name:
                return spec
        raise KeyError(f"no class {name!r} in schema {self.name!r}")

    def __post_init__(self) -> None:
        names = [c.name for c in self.classes]
        if len(names) != len(set(names)):
            raise ValueError("duplicate class names in schema")
        known = set(names) | {"@literal", "@blank"}
        for spec in self.classes:
            for predicate in spec.predicates:
                if predicate.target not in known:
                    raise ValueError(
                        f"predicate {spec.name}.{predicate.name} targets unknown "
                        f"class {predicate.target!r}"
                    )
