"""The DBpedia-like scale model.

DBpedia 2016-10 (the paper's larger KB) has 42.07 M facts over 1 951
predicates with strongly Zipfian frequencies.  This schema reproduces the
*shape* at laptop scale: a deep class structure (the paper's evaluation
classes Person, Settlement, Album, Film, Organization plus their support
classes), ~45 forward predicates of varying participation and skew,
literal attributes, blank-node landmarks, and inverse materialization for
the top 1 % entities.

``scale=1.0`` yields roughly 15–20 k facts; pass ``scale=4`` for a KB in
the 60–80 k range (benchmarks use both).
"""

from __future__ import annotations

from repro.datasets.generator import GeneratedKB, generate
from repro.datasets.schema import ClassSpec, KBSchema, PredicateSpec


def dbpedia_schema(scale: float = 1.0) -> KBSchema:
    """The schema object (exposed separately for schema-level tests)."""

    def n(base: int) -> int:
        return max(2, int(base * scale))

    classes = (
        ClassSpec("Continent", n(6)),
        ClassSpec("LanguageFamily", n(10)),
        ClassSpec("Genre", n(24)),
        ClassSpec("Award", n(30)),
        ClassSpec("Occupation", n(28)),
        ClassSpec("Industry", n(16)),
        ClassSpec(
            "Language",
            n(30),
            (
                PredicateSpec("languageFamily", "LanguageFamily", zipf=0.8),
            ),
        ),
        ClassSpec(
            "Country",
            n(40),
            (
                PredicateSpec("continent", "Continent", zipf=0.5),
                PredicateSpec("officialLanguage", "Language", fanout=(1, 2), zipf=0.9),
                PredicateSpec("currency", "@literal"),
            ),
        ),
        ClassSpec(
            "PoliticalParty",
            n(18),
            (
                PredicateSpec("partyCountry", "Country", zipf=0.8),
                PredicateSpec("ideology", "@literal"),
            ),
        ),
        ClassSpec(
            "University",
            n(60),
            (
                PredicateSpec("universityCity", "Settlement", zipf=1.0),
                PredicateSpec("universityCountry", "Country", zipf=1.0),
            ),
        ),
        ClassSpec(
            "Settlement",
            n(280),
            (
                PredicateSpec("country", "Country", zipf=1.1),
                PredicateSpec("partOf", "Settlement", participation=0.5, zipf=1.2),
                PredicateSpec("mayor", "Person", participation=0.55, zipf=0.3),
                PredicateSpec("twinCity", "Settlement", participation=0.35, fanout=(1, 3), zipf=0.8),
                PredicateSpec("population", "@literal"),
                PredicateSpec("foundingYear", "@literal", participation=0.6),
                PredicateSpec("landmark", "@blank", participation=0.15),
            ),
        ),
        ClassSpec(
            "Person",
            n(520),
            (
                PredicateSpec("birthPlace", "Settlement", zipf=1.1),
                PredicateSpec("deathPlace", "Settlement", participation=0.35, zipf=1.1),
                PredicateSpec("nationality", "Country", zipf=1.2),
                PredicateSpec("occupation", "Occupation", fanout=(1, 2), zipf=1.0),
                PredicateSpec("almaMater", "University", participation=0.45, zipf=1.0),
                PredicateSpec("party", "PoliticalParty", participation=0.2, zipf=1.0),
                PredicateSpec("award", "Award", participation=0.25, fanout=(1, 2), zipf=1.2),
                PredicateSpec("spouse", "Person", participation=0.25, zipf=0.2),
                PredicateSpec("doctoralAdvisor", "Person", participation=0.12, zipf=0.4),
                PredicateSpec("residence", "Settlement", participation=0.5, zipf=1.1),
                PredicateSpec("birthYear", "@literal"),
            ),
        ),
        ClassSpec(
            "Album",
            n(190),
            (
                PredicateSpec("albumArtist", "Person", zipf=0.9),
                PredicateSpec("albumGenre", "Genre", fanout=(1, 2), zipf=1.0),
                PredicateSpec("recordLabel", "Organization", participation=0.7, zipf=1.1),
                PredicateSpec("releaseYear", "@literal"),
                PredicateSpec("producer", "Person", participation=0.5, zipf=0.7),
            ),
        ),
        ClassSpec(
            "Film",
            n(190),
            (
                PredicateSpec("director", "Person", zipf=0.8),
                PredicateSpec("starring", "Person", fanout=(1, 4), zipf=1.0),
                PredicateSpec("filmCountry", "Country", zipf=1.2),
                PredicateSpec("filmGenre", "Genre", fanout=(1, 2), zipf=1.0),
                PredicateSpec("filmAward", "Award", participation=0.2, zipf=1.2),
                PredicateSpec("runtime", "@literal"),
            ),
        ),
        ClassSpec(
            "Organization",
            n(150),
            (
                PredicateSpec("orgLocation", "Settlement", zipf=1.1),
                PredicateSpec("orgCountry", "Country", zipf=1.2),
                PredicateSpec("industry", "Industry", zipf=0.9),
                PredicateSpec("foundedBy", "Person", participation=0.4, zipf=0.5),
                PredicateSpec("ceo", "Person", participation=0.5, zipf=0.3),
                PredicateSpec("numberOfEmployees", "@literal", participation=0.7),
            ),
        ),
    )
    return KBSchema(
        name="dbpedia-like",
        classes=classes,
        inverse_top_fraction=0.01,
        entity_base="http://dbpedia.example.org/resource/",
        predicate_base="http://dbpedia.example.org/ontology/",
    )


def dbpedia_like(scale: float = 1.0, seed: int = 42) -> GeneratedKB:
    """Generate the DBpedia-like KB (deterministic in *seed*)."""
    return generate(dbpedia_schema(scale), seed=seed)
