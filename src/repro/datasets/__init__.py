"""Synthetic knowledge bases and curated scene KBs.

The paper evaluates on DBpedia 2016-10 (42.07 M facts) and a Wikidata dump
(15.9 M facts).  Neither is available offline, so this package generates
*scale models*: KBs whose statistical shape — Zipfian entity and predicate
frequencies, class structure, join structure, labels, hyperlink density —
matches what REMI's behaviour actually depends on (the paper itself builds
its Eq. 1 compression on exactly these power-law assumptions).

* :mod:`repro.datasets.schema` — class / predicate specification model;
* :mod:`repro.datasets.generator` — the Zipf-driven triple generator;
* :mod:`repro.datasets.dbpedia` — the DBpedia-like scale model;
* :mod:`repro.datasets.wikidata` — the Wikidata-like scale model
  (fewer predicates, flatter class structure);
* :mod:`repro.datasets.scenes` — small hand-built KBs, including the
  paper's running examples (Rennes/Nantes, Guyana/Suriname, the
  Müller–Kleiner–Einstein supervisor chain).
"""

from repro.datasets.dbpedia import dbpedia_like
from repro.datasets.generator import (
    GeneratedKB,
    generate,
    iter_schema_facts,
    write_schema_ntriples,
)
from repro.datasets.scenes import (
    einstein_scene,
    france_scene,
    rennes_nantes_scene,
    south_america_scene,
)
from repro.datasets.schema import ClassSpec, KBSchema, PredicateSpec
from repro.datasets.wikidata import wikidata_like

__all__ = [
    "ClassSpec",
    "GeneratedKB",
    "KBSchema",
    "PredicateSpec",
    "dbpedia_like",
    "einstein_scene",
    "france_scene",
    "generate",
    "iter_schema_facts",
    "rennes_nantes_scene",
    "south_america_scene",
    "wikidata_like",
    "write_schema_ntriples",
]
