"""The Wikidata-like scale model.

The paper's Wikidata dump ([6], 15.9 M facts) is smaller than DBpedia and
has far fewer predicates (752 vs 1 951) with a flatter class structure.
This schema mirrors those contrasts: fewer classes (the §4.1.3 evaluation
classes Company, City, Film, Human), fewer predicates per class, slightly
stronger Zipf skew (Wikidata's statements concentrate on head entities),
and the same top-1 % inverse materialization.
"""

from __future__ import annotations

from repro.datasets.generator import GeneratedKB, generate
from repro.datasets.schema import ClassSpec, KBSchema, PredicateSpec


def wikidata_schema(scale: float = 1.0) -> KBSchema:
    """The schema object (exposed separately for schema-level tests)."""

    def n(base: int) -> int:
        return max(2, int(base * scale))

    classes = (
        ClassSpec("Genre", n(18)),
        ClassSpec("Occupation", n(22)),
        ClassSpec("Award", n(20)),
        ClassSpec(
            "Country",
            n(35),
            (
                PredicateSpec("officialLanguage", "Language", fanout=(1, 2), zipf=1.0),
                PredicateSpec("capital", "City", zipf=0.4),
            ),
        ),
        ClassSpec(
            "Language",
            n(25),
            (),
        ),
        ClassSpec(
            "City",
            n(220),
            (
                PredicateSpec("inCountry", "Country", zipf=1.2),
                PredicateSpec("headOfGovernment", "Human", participation=0.5, zipf=0.3),
                PredicateSpec("population", "@literal"),
            ),
        ),
        ClassSpec(
            "Human",
            n(450),
            (
                PredicateSpec("placeOfBirth", "City", zipf=1.2),
                PredicateSpec("placeOfDeath", "City", participation=0.3, zipf=1.2),
                PredicateSpec("citizenship", "Country", zipf=1.3),
                PredicateSpec("fieldOfWork", "Occupation", fanout=(1, 2), zipf=1.1),
                PredicateSpec("awardReceived", "Award", participation=0.2, zipf=1.3),
                PredicateSpec("spouse", "Human", participation=0.2, zipf=0.2),
                PredicateSpec("dateOfBirth", "@literal"),
            ),
        ),
        ClassSpec(
            "Film",
            n(170),
            (
                PredicateSpec("filmDirector", "Human", zipf=0.9),
                PredicateSpec("castMember", "Human", fanout=(1, 3), zipf=1.1),
                PredicateSpec("countryOfOrigin", "Country", zipf=1.3),
                PredicateSpec("genre", "Genre", zipf=1.1),
            ),
        ),
        ClassSpec(
            "Company",
            n(130),
            (
                PredicateSpec("headquarters", "City", zipf=1.2),
                PredicateSpec("companyCountry", "Country", zipf=1.3),
                PredicateSpec("chiefExecutive", "Human", participation=0.6, zipf=0.3),
                PredicateSpec("inception", "@literal"),
            ),
        ),
    )
    return KBSchema(
        name="wikidata-like",
        classes=classes,
        inverse_top_fraction=0.01,
        entity_base="http://wikidata.example.org/entity/",
        predicate_base="http://wikidata.example.org/prop/",
    )


def wikidata_like(scale: float = 1.0, seed: int = 7) -> GeneratedKB:
    """Generate the Wikidata-like KB (deterministic in *seed*)."""
    return generate(wikidata_schema(scale), seed=seed)
