"""Prominence models for concepts (entities and predicates).

§3.1 ranks concepts by prominence to build their codes.  Two measures are
evaluated in the paper and implemented here:

* :class:`FrequencyProminence` (``fr``) — "the number of facts where a
  concept occurs in the KB";
* :class:`PageRankProminence` (``pr``) — the page rank of the entity in
  the hyperlink structure; the paper falls back to ``fr`` "whenever pr is
  undefined", which for us means literals, blank nodes and predicates.

Both expose the same small interface (:class:`Prominence`); the
:class:`~repro.complexity.codes.ComplexityEstimator` is parametric in it,
giving the paper's Ĉfr and Ĉpr variants.

Ranks are 1-based; ties break on the term's deterministic sort key so that
repeated runs (and parallel runs) agree bit-for-bit.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Protocol, Sequence, Tuple

from repro.complexity.pagerank import pagerank
from repro.kb.epoch import CacheCoherence, EpochWatcher
from repro.kb.store import KnowledgeBase
from repro.kb.terms import IRI, Term


class Prominence(Protocol):
    """What the complexity estimator needs from a prominence model."""

    kb: KnowledgeBase

    def entity_score(self, term: Term) -> float:
        """Higher = more prominent.  Must be defined for every term."""
        ...

    def predicate_score(self, predicate: IRI) -> float:
        ...

    def predicate_rank(self, predicate: IRI) -> int:
        """1-based rank of *predicate* in the global predicate ranking."""
        ...


def rank_terms(terms: Iterable[Term], score) -> Dict[Term, int]:
    """Rank *terms* by descending score with deterministic tie-breaks."""
    ordered = sorted(terms, key=lambda t: (-score(t), t._sort_kind, t.sort_key()))
    return {term: position for position, term in enumerate(ordered, start=1)}


class _BaseProminence:
    """Shared predicate-ranking machinery (predicates always rank by fr).

    All memoized rankings are epoch-coherent: every public scorer checks
    the KB epoch first and repairs (or rebuilds) state built against an
    older KB — see :mod:`repro.kb.epoch`.
    """

    def __init__(self, kb: KnowledgeBase):
        self.kb = kb
        self._predicate_ranks: Optional[Dict[IRI, int]] = None
        self._predicate_scores: Dict[IRI, float] = {}
        #: ID-keyed twin of ``_predicate_scores`` (the decode-free path);
        #: repaired/cleared in lockstep with it.
        self._predicate_scores_by_id: Dict[int, float] = {}
        self._watch = EpochWatcher(kb)

    # -- epoch coherence ------------------------------------------------

    def _sync(self) -> None:
        """Absorb KB mutations: per-key repair when the mutation log
        covers the gap, full rebuild otherwise."""
        watch = self._watch
        if watch.seen != self.kb.epoch:
            watch.absorb(self._repair, self._rebuild)

    def _repair(self, changes) -> bool:
        """Incrementally absorb *changes*; returns False to force a full
        rebuild.  Fact counts move only for the touched predicates; the
        global rank table can shift anywhere, so it always re-derives."""
        term_id = getattr(self.kb, "term_id", None)
        for _, triple in changes:
            self._predicate_scores.pop(triple.predicate, None)
            if term_id is not None:
                p_id = term_id(triple.predicate)
                if p_id is not None:
                    self._predicate_scores_by_id.pop(p_id, None)
        self._predicate_ranks = None
        return True

    def _rebuild(self) -> None:
        self._predicate_scores.clear()
        self._predicate_scores_by_id.clear()
        self._predicate_ranks = None

    @property
    def coherence(self) -> CacheCoherence:
        """Epoch-invalidation telemetry for this prominence model."""
        return self._watch.coherence

    # -- scoring --------------------------------------------------------

    def predicate_score(self, predicate: IRI) -> float:
        # Memoized: a fact count is a full per-predicate index scan, and
        # the estimator's rank tables score the same predicates repeatedly.
        self._sync()
        cached = self._predicate_scores.get(predicate)
        if cached is None:
            cached = float(self.kb.predicate_fact_count(predicate))
            self._predicate_scores[predicate] = cached
        return cached

    def predicate_rank(self, predicate: IRI) -> int:
        self._sync()
        if self._predicate_ranks is None:
            self._predicate_ranks = rank_terms(self.kb.predicates(), self.predicate_score)  # type: ignore[assignment]
        rank = self._predicate_ranks.get(predicate)
        if rank is None:
            # Unknown predicate: rank just past the known vocabulary.
            return len(self._predicate_ranks) + 1
        return rank

    def predicate_score_ids(self, ids: Iterable[int]) -> Optional[Dict[int, float]]:
        """:meth:`predicate_score` for interned IDs, without decoding.

        The base model scores predicates by fact count (fr), which
        dictionary-encoded backends answer in ID space
        (:meth:`~repro.kb.interned.InternedKnowledgeBase.predicate_fact_count_id`)
        — the batch scorer builds whole conditional rank tables from this
        with zero term round-trips.  Returns ``None`` on backends without
        ID queries, and on subclasses that override
        :meth:`predicate_score` (e.g. exogenous scores): the ID path must
        produce the very floats the term path would, so any custom scorer
        forces the per-term fallback."""
        if type(self).predicate_score is not _BaseProminence.predicate_score:
            return None
        count = getattr(self.kb, "predicate_fact_count_id", None)
        if count is None:
            return None
        self._sync()
        # A fact count is a full per-predicate index scan, and popular
        # predicates recur in most join/closed tables — memoize per ID
        # (the twin of the term path's ``_predicate_scores``).
        memo = self._predicate_scores_by_id
        out = {}
        for i in ids:
            score = memo.get(i)
            if score is None:
                score = memo[i] = float(count(i))
            out[i] = score
        return out

    def top_entities(self, fraction: float) -> frozenset:
        """The top *fraction* of entities by this prominence (for pruning §3.5.2)."""
        self._sync()
        entities = sorted(
            self.kb.entities(),
            key=lambda e: (-self.entity_score(e), e.sort_key()),
        )
        keep = max(1, int(len(entities) * fraction)) if entities and fraction > 0 else 0
        return frozenset(entities[:keep])

    def entity_score(self, term: Term) -> float:  # pragma: no cover - overridden
        raise NotImplementedError


class FrequencyProminence(_BaseProminence):
    """Prominence = number of KB facts mentioning the concept (``fr``)."""

    name = "fr"

    def __init__(self, kb: KnowledgeBase):
        super().__init__(kb)
        # All terms (incl. literals and blanks) in one index pass: the
        # rank tables score the same literal candidates over and over,
        # and a per-term index scan each time dominated queue building.
        self._frequencies = kb.term_frequencies()

    def _repair(self, changes) -> bool:
        # The frequency counter is the textbook incremental case: each
        # mutation moves exactly two counts by one.
        if not super()._repair(changes):
            return False
        freq = self._frequencies
        for op, triple in changes:
            step = 1 if op == "add" else -1
            freq[triple.subject] += step
            freq[triple.object] += step
        return True

    def _rebuild(self) -> None:
        super()._rebuild()
        self._frequencies = self.kb.term_frequencies()

    def entity_score(self, term: Term) -> float:
        self._sync()
        cached = self._frequencies.get(term)
        if cached is not None:
            return float(cached)
        return 0.0  # absent from every index position

    def entity_score_ids(self, ids: Iterable[int]) -> Optional[Dict[int, float]]:
        """:meth:`entity_score` for interned IDs, without decoding.

        Frequency prominence only needs occurrence counts, which the
        dictionary-encoded backends answer directly in ID space
        (:meth:`~repro.kb.interned.InternedKnowledgeBase.term_frequency_id`)
        — scores are identical floats to the term path, pinned by the
        rank-table differentials.  ``None`` on backends without ID
        queries and on subclasses overriding :meth:`entity_score` (the ID
        path must match the term path float for float); PageRank
        prominence has no ID path at all (its scores live on terms), so
        the scorer falls back to decoding there."""
        if type(self).entity_score is not FrequencyProminence.entity_score:
            return None
        frequency = getattr(self.kb, "term_frequency_id", None)
        if frequency is None:
            return None
        self._sync()
        return {i: float(frequency(i)) for i in ids}

    def __repr__(self) -> str:
        return f"FrequencyProminence(kb={self.kb.name!r})"


class PageRankProminence(_BaseProminence):
    """Prominence = PageRank in the entity link graph (``pr``), fr fallback.

    Scores are scaled so that the *relative* order matches PageRank for
    IRIs; terms without a PageRank (literals, blank nodes) fall back to a
    frequency score mapped below the smallest PageRank, mirroring the
    paper's "use fr whenever pr is undefined".
    """

    name = "pr"

    def __init__(self, kb: KnowledgeBase, scores: Optional[Dict[IRI, float]] = None):
        super().__init__(kb)
        #: Caller-supplied scores are pinned: a KB mutation rebuilds the
        #: fr fallback and scale but keeps the provided PageRank vector
        #: (the caller owns its provenance).  Default scores recompute.
        self._scores_pinned = scores is not None
        self._scores = scores if scores is not None else pagerank(kb)
        self._fallback = FrequencyProminence(kb)
        self._fit_fr_scale()

    def _fit_fr_scale(self) -> None:
        min_pr = min(self._scores.values()) if self._scores else 1.0
        max_fr = max(
            (self._fallback.entity_score(e) for e in self.kb.entities()),
            default=1.0,
        )
        # Map fr scores into (0, min_pr): any pr-defined term outranks them.
        self._fr_scale = (min_pr * 0.5) / max(max_fr, 1.0)

    def _sync(self) -> None:
        # One edge can reroute rank mass anywhere in the graph: PageRank
        # has no per-key repair, so sync coarsely (repair=None also skips
        # the mutation-log materialization the rebuild would ignore).
        watch = self._watch
        if watch.seen != self.kb.epoch:
            watch.absorb(None, self._rebuild)

    def _rebuild(self) -> None:
        super()._rebuild()
        if not self._scores_pinned:
            self._scores = pagerank(self.kb)
        self._fit_fr_scale()

    def entity_score(self, term: Term) -> float:
        self._sync()
        score = self._scores.get(term)  # type: ignore[arg-type]
        if score is not None:
            return score
        return self._fallback.entity_score(term) * self._fr_scale

    def __repr__(self) -> str:
        return f"PageRankProminence(kb={self.kb.name!r}, nodes={len(self._scores)})"


def conditional_rank(
    term: Term, candidates: Sequence[Term], prominence: Prominence
) -> int:
    """1-based rank of *term* among *candidates* ordered by prominence.

    This is the paper's ``k(I | context)``: once the context (e.g. the
    predicate *mayor*) is conveyed, the decoder discriminates only among
    the candidates that fit it.  Ties share the group's last position
    (every at-least-as-prominent concept must be distinguished from).
    """
    own_score = prominence.entity_score(term)
    rank = 0
    seen_self = False
    for candidate in candidates:
        if candidate == term:
            seen_self = True
        if prominence.entity_score(candidate) >= own_score:
            rank += 1
    if not seen_self:
        rank += 1  # term outside the candidate set ranks past all of it
    return max(rank, 1)


def ranking_of(candidates: Iterable[Term], prominence: Prominence) -> List[Term]:
    """All candidates sorted most-prominent-first (deterministic)."""
    return sorted(
        candidates,
        key=lambda t: (-prominence.entity_score(t), t._sort_kind, t.sort_key()),
    )
