"""Estimated Kolmogorov complexity Ĉ (paper §3.1 and §3.5.3).

The intuitiveness of a (subgraph) expression is quantified as its encoded
length in bits, where codes derive from *prominence rankings*:

* :mod:`repro.complexity.ranking` — prominence models: KB frequency
  (``fr``) and PageRank (``pr``);
* :mod:`repro.complexity.pagerank` — power-iteration PageRank over the
  KB's entity link graph (our stand-in for the Wikipedia page rank);
* :mod:`repro.complexity.powerlaw` — Eq. 1: per-predicate power-law fits
  that compress conditional rankings into (α, β) coefficient pairs;
* :mod:`repro.complexity.codes` — the :class:`ComplexityEstimator`
  computing Ĉ(ρ) and Ĉ(e) with the chain rule for joins;
* :mod:`repro.complexity.batch` — the :class:`QueueScorer`: whole
  candidate queues scored in one pass against shared, ID-keyed
  conditional rank tables.
"""

from repro.complexity.batch import QueueScorer
from repro.complexity.codes import ComplexityEstimator
from repro.complexity.pagerank import pagerank
from repro.complexity.powerlaw import PowerLawFit, PowerLawModel, fit_power_law
from repro.complexity.ranking import (
    FrequencyProminence,
    PageRankProminence,
    Prominence,
)

__all__ = [
    "ComplexityEstimator",
    "FrequencyProminence",
    "PageRankProminence",
    "PowerLawFit",
    "PowerLawModel",
    "Prominence",
    "QueueScorer",
    "fit_power_law",
    "pagerank",
]
