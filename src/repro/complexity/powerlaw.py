"""Power-law compression of conditional rankings (paper Eq. 1, §3.5.3).

Storing ``k(I | p)`` for every object of every predicate is quadratic in
vocabulary size.  The paper instead fits, per predicate, the linear model

    log2(k(I | p)) ≈ −α · log2(fr(I | p)) + β

and stores only the two coefficients.  :func:`fit_power_law` performs the
least-squares fit in log-log space and reports R²; :class:`PowerLawModel`
manages the per-predicate coefficient table and answers rank estimates.

The paper validates the fit quality empirically (average R² of 0.85 on
DBpedia and 0.88 on Wikidata for fr; 0.91 for pr) — our E8 bench
reproduces those numbers on the synthetic KBs.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

from repro.kb.store import KnowledgeBase
from repro.kb.terms import IRI, Term


@dataclass(frozen=True)
class PowerLawFit:
    """Coefficients of one per-predicate fit: log2(rank) = −α·log2(score) + β."""

    alpha: float
    beta: float
    r_squared: float
    points: int

    def rank_bits(self, score: float) -> float:
        """Estimated code length log2(k) for a concept with this *score*."""
        if score <= 0:
            # Unseen concept: costlier than anything observed.
            return max(self.beta, 0.0) + 1.0
        return max(0.0, -self.alpha * math.log2(score) + self.beta)


def fit_power_law(points: Sequence[Tuple[float, float]]) -> PowerLawFit:
    """Least squares of log2(rank) against log2(score).

    *points* are ``(score, rank)`` pairs with positive values.  With fewer
    than two distinct scores the fit degenerates to α=0, β=mean(log2 rank)
    and R² is reported as 1.0 (a constant fits constant data exactly).
    """
    xs = []
    ys = []
    for score, rank in points:
        if score <= 0 or rank <= 0:
            raise ValueError(f"scores and ranks must be positive, got ({score}, {rank})")
        xs.append(math.log2(score))
        ys.append(math.log2(rank))
    n = len(xs)
    if n == 0:
        raise ValueError("cannot fit a power law to zero points")
    mean_x = sum(xs) / n
    mean_y = sum(ys) / n
    var_x = sum((x - mean_x) ** 2 for x in xs)
    if var_x == 0.0:
        return PowerLawFit(alpha=0.0, beta=mean_y, r_squared=1.0, points=n)
    cov_xy = sum((x - mean_x) * (y - mean_y) for x, y in zip(xs, ys))
    slope = cov_xy / var_x
    intercept = mean_y - slope * mean_x
    ss_res = sum((y - (slope * x + intercept)) ** 2 for x, y in zip(xs, ys))
    ss_tot = sum((y - mean_y) ** 2 for y in ys)
    r_squared = 1.0 if ss_tot == 0.0 else max(0.0, 1.0 - ss_res / ss_tot)
    # Eq. 1 writes the slope as −α, so α = −slope (positive when rank
    # decreases with score, the expected regime).
    return PowerLawFit(alpha=-slope, beta=intercept, r_squared=r_squared, points=n)


class PowerLawModel:
    """Per-predicate (α, β) table mapping conditional frequency to bits.

    ``mode="fr"`` fits rank against the conditional object frequency
    ``fr(I | p)``; passing an explicit ``score`` callable (e.g. PageRank)
    reproduces the paper's remark that the correlation "extrapolates to
    the Wikipedia page rank".
    """

    def __init__(
        self,
        kb: KnowledgeBase,
        score=None,
        min_points: int = 3,
    ):
        self.kb = kb
        self._score = score
        self.min_points = min_points
        self._fits: Dict[IRI, Optional[PowerLawFit]] = {}

    def fit_for(self, predicate: IRI) -> Optional[PowerLawFit]:
        """The fit for one predicate, or None when too few data points."""
        if predicate in self._fits:
            return self._fits[predicate]
        frequencies = self.kb.object_frequencies(predicate)
        if self._score is None:
            scored = [(float(freq), obj) for obj, freq in frequencies.items()]
        else:
            scored = [(float(self._score(obj)), obj) for obj in frequencies]
        scored = [(s, o) for s, o in scored if s > 0]
        if len(scored) < self.min_points:
            self._fits[predicate] = None
            return None
        scored.sort(key=lambda pair: (-pair[0], pair[1].sort_key()))
        points = [(score, rank) for rank, (score, _) in enumerate(scored, start=1)]
        fit = fit_power_law(points)
        self._fits[predicate] = fit
        return fit

    def estimated_rank_bits(self, predicate: IRI, obj: Term) -> Optional[float]:
        """Estimated log2 k(obj | predicate), or None when no fit exists."""
        fit = self.fit_for(predicate)
        if fit is None:
            return None
        if self._score is None:
            score = float(self.kb.object_frequencies(predicate).get(obj, 0))
        else:
            score = float(self._score(obj))
        return fit.rank_bits(score)

    def average_r_squared(self) -> float:
        """Mean R² across all fittable predicates — the §3.5.3 statistic."""
        values = []
        for predicate in self.kb.predicates():
            fit = self.fit_for(predicate)
            if fit is not None and fit.points >= self.min_points:
                values.append(fit.r_squared)
        if not values:
            return 0.0
        return sum(values) / len(values)
