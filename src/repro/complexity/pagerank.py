"""PageRank over the knowledge base's entity link graph.

The paper ranks entities by their *Wikipedia page rank* (§3.1).  Wikipedia
dumps are unavailable offline, so we compute PageRank over the closest
endogenous structure: the directed graph whose nodes are IRI entities and
whose edges are entity-to-entity triples (ignoring literals and, by
default, inverse predicates — they would double every edge).  This is the
same substitution LinkSUM makes when no exogenous signal is present.

Standard power iteration with damping 0.85 and a dangling-mass
redistribution step; converges to an L1 tolerance.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Set

from repro.kb.base import BaseKnowledgeBase
from repro.kb.inverse import is_inverse
from repro.kb.terms import IRI


def link_graph(
    kb: BaseKnowledgeBase,
    skip_predicates: Optional[Set[IRI]] = None,
    include_inverses: bool = False,
) -> Dict[IRI, Set[IRI]]:
    """The entity→entity adjacency used for PageRank."""
    skip = skip_predicates or set()
    edges: Dict[IRI, Set[IRI]] = {}
    for triple in kb:
        if triple.predicate in skip:
            continue
        if not include_inverses and is_inverse(triple.predicate):
            continue
        s, o = triple.subject, triple.object
        if isinstance(s, IRI) and isinstance(o, IRI) and s != o:
            edges.setdefault(s, set()).add(o)
            edges.setdefault(o, set())  # ensure sink nodes exist
    return edges


def pagerank(
    graph_or_kb: "Dict[IRI, Set[IRI]] | BaseKnowledgeBase",
    damping: float = 0.85,
    tolerance: float = 1e-9,
    max_iterations: int = 200,
) -> Dict[IRI, float]:
    """PageRank scores for every node of the link graph.

    Accepts either a prebuilt adjacency (node → successors) or a
    :class:`~repro.kb.base.BaseKnowledgeBase`, in which case :func:`link_graph` is applied
    first.  Scores sum to 1.
    """
    if isinstance(graph_or_kb, BaseKnowledgeBase):
        graph = link_graph(graph_or_kb)
    else:
        graph = graph_or_kb
    nodes = list(graph)
    n = len(nodes)
    if n == 0:
        return {}
    if not 0.0 < damping < 1.0:
        raise ValueError(f"damping must be in (0, 1), got {damping}")

    rank = {node: 1.0 / n for node in nodes}
    out_degree = {node: len(succ) for node, succ in graph.items()}
    incoming: Dict[IRI, list] = {node: [] for node in nodes}
    for node, successors in graph.items():
        for succ in successors:
            incoming[succ].append(node)

    base = (1.0 - damping) / n
    for _ in range(max_iterations):
        dangling_mass = sum(rank[node] for node in nodes if out_degree[node] == 0)
        spread = damping * dangling_mass / n
        new_rank = {}
        for node in nodes:
            inbound = sum(rank[src] / out_degree[src] for src in incoming[node])
            new_rank[node] = base + spread + damping * inbound
        delta = sum(abs(new_rank[node] - rank[node]) for node in nodes)
        rank = new_rank
        if delta < tolerance:
            break
    return rank


def top_entities(scores: Dict[IRI, float], k: int) -> Iterable[IRI]:
    """The *k* highest-ranked entities, deterministic under score ties."""
    return [
        node
        for node, _ in sorted(scores.items(), key=lambda kv: (-kv[1], kv[0].value))[:k]
    ]
