"""The Ĉ estimator: expression complexity in bits (paper §3.1).

For a single-atom expression ``p(x, I)``::

    Ĉ(p(x, I)) = log2 k(p)  +  log2 k(I | p)

where ``k(p)`` is the predicate's position in the global prominence
ranking and ``k(I | p)`` the object's position among the objects of ``p``
(the chain rule: once *mayor* is conveyed, the decoder discriminates only
among mayors).

For a path ``p0(x, y) ∧ p1(y, I1)`` the chain continues::

    Ĉ(ρ) = log2 k(p0)
         + log2 k(p1 | p0)        # rank among predicates joinable 1→2 with p0
         + log2 k(I1 | p0 ⋈ p1)   # rank among the bindings of the tail

A path+star pays the star atom's conditional predicate and object codes
too; closed shapes pay the root predicate plus each closing predicate's
rank among the predicates that *co-occur subject-and-object* with it.

Ĉ(e) for a referring expression is the sum over its conjuncts, and
Ĉ(⊤) = ∞ (footnote 6).  This additive form deliberately double-counts
shared sub-paths (§3.1's "simplification") — fine for comparisons, which
is all REMI needs.

Two evaluation modes:

* ``exact`` — conditional rankings are materialized (and cached) per
  context;
* ``powerlaw`` — conditional object ranks come from the per-predicate
  (α, β) fits of Eq. 1 (:mod:`repro.complexity.powerlaw`), trading a
  little fidelity for O(1) storage per predicate.
"""

from __future__ import annotations

import math
from typing import Dict, FrozenSet, Optional, Tuple

from repro.complexity.powerlaw import PowerLawModel
from repro.complexity.ranking import Prominence
from repro.expressions.expression import Expression
from repro.expressions.subgraph import Shape, SubgraphExpression
from repro.kb.epoch import CacheCoherence, EpochWatcher
from repro.kb.namespaces import RDF_TYPE
from repro.kb.store import KnowledgeBase
from repro.kb.terms import IRI, Term


def _log2_rank(rank: int) -> float:
    """Code length of the *rank*-th concept: log2(k), with k ≥ 1."""
    return math.log2(max(rank, 1))


# ----------------------------------------------------------------------
# ID-space conditional candidate sets (shared with the batch scorer)
#
# On dictionary-encoded backends the scans that define each conditional
# ranking's candidate set run over integer IDs.  The estimator decodes the
# result once to build its term-keyed tables; the batch scorer
# (:mod:`repro.complexity.batch`) ranks the IDs directly.  One
# implementation serves both so the two can never drift apart.
# ----------------------------------------------------------------------


def joinable_predicate_ids(kb: KnowledgeBase, p0_id: int) -> "set[int]":
    """IDs of predicates reachable from an object of ``p0`` (1→2 joins)."""
    joinable: set = set()
    for mid_id in kb.object_ids_of_predicate_view(p0_id):  # type: ignore[attr-defined]
        joinable |= kb.predicate_ids_of_view(mid_id)  # type: ignore[attr-defined]
    return joinable


def co_occurring_predicate_ids(kb: KnowledgeBase, anchor_id: int) -> "set[int]":
    """IDs of predicates sharing an ``(s, o)`` pair with *anchor*."""
    co_ids: set = set()
    for s_id, obj_ids in kb.subject_object_items_ids(anchor_id):  # type: ignore[attr-defined]
        for c_id in kb.predicate_ids_of_view(s_id):  # type: ignore[attr-defined]
            if (
                c_id != anchor_id
                and c_id not in co_ids
                and not obj_ids.isdisjoint(kb.objects_ids_view(s_id, c_id))  # type: ignore[attr-defined]
            ):
                co_ids.add(c_id)
    return co_ids


def tail_candidate_ids(kb: KnowledgeBase, p0_id: int, p1_id: int) -> "set[int]":
    """IDs of the bindings of ``z`` in ``p0(x, y) ∧ p1(y, z)``."""
    candidate_ids: set = set()
    for mid_id in kb.object_ids_of_predicate_view(p0_id):  # type: ignore[attr-defined]
        candidate_ids |= kb.objects_ids_view(mid_id, p1_id)  # type: ignore[attr-defined]
    return candidate_ids


def log2_rank_table(ranks: dict) -> "Tuple[Dict[int, float], float]":
    """A rank table precompiled to code lengths: ``(bits_by_key, default)``.

    The batch scorer's kernel mode probes conditional tables hundreds of
    thousands of times per queue; applying :func:`_log2_rank` once per
    *table entry* at build time (instead of once per *probe*) keeps the
    scoring loop to two dict gets and a float add.  ``default`` is the
    out-of-table code ``log2(len + 1)`` — the same float
    ``ranks.get(key, len + 1)`` would have produced, so scores stay
    bit-identical to the per-probe path.
    """
    return (
        {key: _log2_rank(rank) for key, rank in ranks.items()},
        _log2_rank(len(ranks) + 1),
    )


def rank_table_floor(compiled: "Tuple[Dict[int, float], float]") -> float:
    """The shortest code a compiled rank table can ever emit, in bits.

    For a :func:`log2_rank_table` output this is the best-possible (rank-1
    or tied-group) contribution any key — in-table or out-of-table — can
    pay, which makes it an admissible lower bound on that conditional
    code.  Note the floor is *not* always 0.0: tie-aware ranking gives a
    tie group its last position, so a table whose top scores tie starts
    above rank 1.
    """
    bits, default = compiled
    return min(min(bits.values()), default) if bits else default


def _tie_aware_ranks(items, score) -> dict:
    """Descending-score ranks where a tie group shares its *last* position.

    A decoder must distinguish a concept from every concept at least as
    prominent, so equally-prominent items all pay the full group position
    — this keeps the code honest for the long tail of frequency-1 objects
    (otherwise a lexicographic tie-break would hand some of them rank 1).
    """
    ordered = sorted(items, key=lambda t: -score(t))
    ranks: dict = {}
    index = 0
    while index < len(ordered):
        group_end = index
        group_score = score(ordered[index])
        while group_end + 1 < len(ordered) and score(ordered[group_end + 1]) == group_score:
            group_end += 1
        shared_rank = group_end + 1  # 1-based position of the group's tail
        for position in range(index, group_end + 1):
            ranks[ordered[position]] = shared_rank
        index = group_end + 1
    return ranks


class ComplexityEstimator:
    """Computes Ĉ over subgraph expressions and referring expressions.

    Parameters
    ----------
    kb:
        The knowledge base the rankings are computed on.
    prominence:
        A :class:`~repro.complexity.ranking.Prominence` model — frequency
        gives the paper's Ĉfr, PageRank gives Ĉpr.
    mode:
        ``"exact"`` or ``"powerlaw"`` (Eq. 1 compression for conditional
        object ranks; predicate ranks are always exact, as in the paper).
    """

    def __init__(
        self,
        kb: KnowledgeBase,
        prominence: Prominence,
        mode: str = "exact",
        type_discount_bits: float = 0.0,
    ):
        if mode not in ("exact", "powerlaw"):
            raise ValueError(f"mode must be 'exact' or 'powerlaw', got {mode!r}")
        if type_discount_bits < 0:
            raise ValueError(f"type_discount_bits must be ≥ 0, got {type_discount_bits}")
        self.kb = kb
        self.prominence = prominence
        self.mode = mode
        #: §4.1.1 finds users systematically rank ``rdf:type`` atoms as the
        #: simplest, while Ĉ often ranks them 2nd–3rd — "the need of
        #: special treatment for the type predicate as suggested by [13]".
        #: A positive discount subtracts that many bits from the type
        #: predicate's code (floored at 0), pulling type atoms forward.
        self.type_discount_bits = type_discount_bits
        self._powerlaw: Optional[PowerLawModel] = None
        if mode == "powerlaw":
            self._powerlaw = PowerLawModel(kb)
        self._se_cache: Dict[SubgraphExpression, float] = {}
        self._object_ranks: Dict[IRI, Dict[Term, int]] = {}
        self._join_predicate_ranks: Dict[IRI, Dict[IRI, int]] = {}
        self._closed_predicate_ranks: Dict[IRI, Dict[IRI, int]] = {}
        self._tail_ranks: Dict[Tuple[IRI, IRI], Dict[Term, int]] = {}
        self._watch = EpochWatcher(kb)

    # ------------------------------------------------------------------
    # epoch coherence
    # ------------------------------------------------------------------

    def _sync(self) -> None:
        """Drop rank tables built at an older KB epoch.  Conditional
        rankings have no cheap per-key repair (one triple can move any
        rank), so invalidation is coarse; the power-law fits re-derive
        with them."""
        watch = self._watch
        if watch.seen != self.kb.epoch:
            watch.absorb(None, self._rebuild_tables)

    def _rebuild_tables(self) -> None:
        self.clear_caches()
        if self._powerlaw is not None:
            self._powerlaw = PowerLawModel(self.kb)

    @property
    def coherence(self) -> CacheCoherence:
        """Epoch-invalidation telemetry for this estimator's tables."""
        return self._watch.coherence

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------

    def complexity(self, se: SubgraphExpression) -> float:
        """Ĉ(ρ) in bits."""
        self._sync()
        cached = self._se_cache.get(se)
        if cached is not None:
            return cached
        bits = self._compute(se)
        self._se_cache[se] = bits
        return bits

    def expression_complexity(self, expression: Expression) -> float:
        """Ĉ(e) = Σ Ĉ(ρᵢ); Ĉ(⊤) = ∞."""
        if expression.is_top:
            return math.inf
        return sum(self.complexity(se) for se in expression.conjuncts)

    def predicate_bits(self, predicate: IRI) -> float:
        """l(p_b) = log2 of the predicate's global prominence rank."""
        self._sync()
        bits = _log2_rank(self.prominence.predicate_rank(predicate))
        if self.type_discount_bits and predicate == RDF_TYPE:
            bits = max(0.0, bits - self.type_discount_bits)
        return bits

    # ------------------------------------------------------------------
    # per-shape computation
    # ------------------------------------------------------------------

    def _compute(self, se: SubgraphExpression) -> float:
        if se.shape is Shape.SINGLE_ATOM:
            atom = se.atoms[0]
            return self.predicate_bits(atom.predicate) + self._object_bits(
                atom.predicate, atom.object  # type: ignore[arg-type]
            )
        if se.shape is Shape.PATH:
            hop, tail = se.atoms
            return (
                self.predicate_bits(hop.predicate)
                + self._join_predicate_bits(hop.predicate, tail.predicate)
                + self._tail_object_bits(hop.predicate, tail.predicate, tail.object)  # type: ignore[arg-type]
            )
        if se.shape is Shape.PATH_STAR:
            hop, star1, star2 = se.atoms
            bits = self.predicate_bits(hop.predicate)
            for star in (star1, star2):
                bits += self._join_predicate_bits(hop.predicate, star.predicate)
                bits += self._tail_object_bits(hop.predicate, star.predicate, star.object)  # type: ignore[arg-type]
            return bits
        if se.shape in (Shape.CLOSED_2, Shape.CLOSED_3):
            # The cheapest predicate anchors the code; the rest pay their
            # rank among predicates that co-occur (same s, same o) with it.
            predicates = sorted(se.predicates(), key=self.prominence.predicate_rank)
            anchor = predicates[0]
            bits = self.predicate_bits(anchor)
            for predicate in predicates[1:]:
                bits += self._closed_predicate_bits(anchor, predicate)
            return bits
        raise AssertionError(f"unhandled shape {se.shape}")

    # ------------------------------------------------------------------
    # conditional codes
    # ------------------------------------------------------------------

    def _object_bits(self, predicate: IRI, obj: Term) -> float:
        """log2 k(I | p): the object's rank among the objects of *p*."""
        if self._powerlaw is not None:
            estimated = self._powerlaw.estimated_rank_bits(predicate, obj)
            if estimated is not None:
                return estimated
        ranks = self._object_ranks.get(predicate)
        if ranks is None:
            ranks = self._rank_map(self.kb.objects_of_predicate(predicate))
            self._object_ranks[predicate] = ranks
        return _log2_rank(ranks.get(obj, len(ranks) + 1))

    def _join_predicate_bits(self, p0: IRI, p1: IRI) -> float:
        """log2 k(p1 | p0): rank among predicates joinable 1→2 with p0."""
        ranks = self._join_predicate_ranks.get(p0)
        if ranks is None:
            ranks = self._rank_predicates(self._joinable_predicates(p0))
            self._join_predicate_ranks[p0] = ranks
        return _log2_rank(ranks.get(p1, len(ranks) + 1))

    def _joinable_predicates(self, p0: IRI) -> "set[IRI]":
        """The predicates reachable from an object of *p0* (one decode on
        dictionary-encoded backends: the scan runs over integer IDs)."""
        kb = self.kb
        if kb.supports_id_queries:
            p0_id = kb.term_id(p0)  # type: ignore[attr-defined]
            if p0_id is None:
                return set()
            return set(kb.decode_terms(joinable_predicate_ids(kb, p0_id)))  # type: ignore[attr-defined]
        joinable: set = set()
        for mid in kb.objects_of_predicate(p0):
            joinable |= kb.predicates_of(mid)
        return joinable

    def _closed_predicate_bits(self, anchor: IRI, predicate: IRI) -> float:
        """log2 k(p | anchor) among predicates sharing an (s, o) pair."""
        ranks = self._closed_predicate_ranks.get(anchor)
        if ranks is None:
            ranks = self._rank_predicates(self._co_occurring_predicates(anchor))
            self._closed_predicate_ranks[anchor] = ranks
        return _log2_rank(ranks.get(predicate, len(ranks) + 1))

    def _co_occurring_predicates(self, anchor: IRI) -> "set[IRI]":
        """Predicates sharing an ``(s, o)`` pair with *anchor* (ID-space
        scan with one decode on dictionary-encoded backends)."""
        kb = self.kb
        if kb.supports_id_queries:
            anchor_id = kb.term_id(anchor)  # type: ignore[attr-defined]
            if anchor_id is None:
                return set()
            return set(kb.decode_terms(co_occurring_predicate_ids(kb, anchor_id)))  # type: ignore[attr-defined]
        co_occurring: set = set()
        for subject, objs in kb.subject_object_items(anchor):
            for candidate in kb.predicates_of(subject):
                if candidate != anchor and candidate not in co_occurring:
                    if not objs.isdisjoint(kb.objects_view(subject, candidate)):
                        co_occurring.add(candidate)
        return co_occurring

    def _tail_object_bits(self, p0: IRI, p1: IRI, obj: Term) -> float:
        """log2 k(I | p0 ⋈ p1): rank among bindings of z in p0(x,y) ∧ p1(y,z)."""
        key = (p0, p1)
        ranks = self._tail_ranks.get(key)
        if ranks is None:
            kb = self.kb
            if kb.supports_id_queries:
                p0_id = kb.term_id(p0)  # type: ignore[attr-defined]
                p1_id = kb.term_id(p1)  # type: ignore[attr-defined]
                candidate_ids: set = set()
                if p0_id is not None and p1_id is not None:
                    candidate_ids = tail_candidate_ids(kb, p0_id, p1_id)
                candidates: set = set(kb.decode_terms(candidate_ids))  # type: ignore[attr-defined]
            else:
                candidates = set()
                for mid in kb.objects_of_predicate(p0):
                    candidates |= kb.objects_view(mid, p1)
            ranks = self._rank_map(candidates)
            self._tail_ranks[key] = ranks
        return _log2_rank(ranks.get(obj, len(ranks) + 1))

    # ------------------------------------------------------------------
    # ranking helpers
    # ------------------------------------------------------------------

    def _rank_map(self, terms: "set[Term] | FrozenSet[Term]") -> Dict[Term, int]:
        return _tie_aware_ranks(terms, self.prominence.entity_score)

    def _rank_predicates(self, predicates: "set[IRI]") -> Dict[IRI, int]:
        return _tie_aware_ranks(predicates, self.prominence.predicate_score)

    def clear_caches(self) -> None:
        """Drop all memoized rankings.

        Called automatically by the epoch guard when the KB mutates
        (:mod:`repro.kb.epoch`); callers never need to invoke it by hand.
        """
        self._se_cache.clear()
        self._object_ranks.clear()
        self._join_predicate_ranks.clear()
        self._closed_predicate_ranks.clear()
        self._tail_ranks.clear()

    def __repr__(self) -> str:
        name = getattr(self.prominence, "name", "?")
        return f"ComplexityEstimator(prominence={name}, mode={self.mode})"


# ----------------------------------------------------------------------
# registry factories (the ``exact`` / ``powerlaw`` entries of
# :data:`repro.registry.ESTIMATORS` — custom estimators register their
# own factory with the same ``(kb, prominence, **kwargs)`` signature)
# ----------------------------------------------------------------------


def exact_estimator(kb: KnowledgeBase, prominence: Prominence, **kwargs) -> ComplexityEstimator:
    """Ĉ with exact conditional rankings (the paper's default)."""
    return ComplexityEstimator(kb, prominence, mode="exact", **kwargs)


def powerlaw_estimator(kb: KnowledgeBase, prominence: Prominence, **kwargs) -> ComplexityEstimator:
    """Ĉ with Eq. 1 power-law compression for conditional object ranks."""
    return ComplexityEstimator(kb, prominence, mode="powerlaw", **kwargs)
