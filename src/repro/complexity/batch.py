"""Batch Ĉ scoring: whole candidate queues in one pass (§3.5.2 phase 1).

:meth:`ComplexityEstimator.complexity` answers one subgraph expression at
a time: hash the SE, probe the memo, dispatch on shape, probe each lazy
rank table.  Queue construction asks the same question tens of thousands
of times per target set, and in batch serving the same conditional
rankings are needed by request after request.  :class:`QueueScorer`
restructures that work the way the candidate pipeline restructures
enumeration:

1. **group** the surviving candidates by shape and anchor predicate;
2. **materialize** every conditional ranking the group needs exactly once
   — predicate ranks, ``k(I | p)`` object tables, join and co-occurrence
   tables — *keyed by interned integer IDs* on dictionary-encoded
   backends, so table probes are int-dict lookups and no term is decoded
   during scoring;
3. **score** the whole queue in one tight pass over local references.

The candidate sets behind each table come from the same ID-space scans
the estimator uses (:func:`~repro.complexity.codes.joinable_predicate_ids`
and friends), and ranks are computed with the same tie-aware ranking, so
the scores are bit-identical to ``estimator.complexity`` — pinned by the
differential harness in ``tests/core/test_candidate_engine.py``.

**Kernel mode** (the default where available) goes two steps further:
tables are built *decode-free* — the prominence model scores interned IDs
directly (``entity_score_ids`` / ``predicate_score_ids``) wherever it can
— and each rank is precompiled to its code length at build time
(:func:`~repro.complexity.codes.log2_rank_table`), so the scoring loop is
two dict probes and a float add per conditional code, with no ``log2``
per probe.  Tables build lazily on first probe (no pre-pass over the
plans); the candidate engine's inline loop grabs the single-plan scorer
via :meth:`QueueScorer.plan_scorer`.  ``use_kernel=False`` keeps the
original per-probe rank tables as the differential/A-B reference.

Tables persist for the scorer's lifetime: a :class:`~repro.core.batch.BatchMiner`
holds one scorer (through its engine) and amortizes them across every
request in the batch.  Concurrent use is safe the same way the estimator
is: a racy double build computes identical tables from pure KB queries.

The ID fast path requires ``mode="exact"`` (power-law object codes are
per-(predicate, object) estimates, not rankings) and a backend with
``supports_id_queries``; otherwise :meth:`score` transparently falls back
to per-SE ``estimator.complexity`` calls, preserving exact behaviour.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.kb.epoch import CacheCoherence, EpochWatcher

from repro.complexity.codes import (
    ComplexityEstimator,
    _log2_rank,
    _tie_aware_ranks,
    co_occurring_predicate_ids,
    joinable_predicate_ids,
    log2_rank_table,
    rank_table_floor,
    tail_candidate_ids,
)
from repro.expressions.subgraph import Shape, SubgraphExpression

#: Per-SE scoring plans: shape tag + the interned IDs the formula needs.
#: The candidate engine builds plans straight from its ID tuples (no
#: re-encoding); :meth:`QueueScorer.score` builds them from decoded SEs.
PLAN_SINGLE, PLAN_PATH, PLAN_STAR, PLAN_CLOSED = 0, 1, 2, 3

#: Relative safety shave applied to every family bound (≈1e-12).  Each
#: bound mirrors the member formula term-for-term with some terms replaced
#: by table floors, and rounded float addition is monotone per argument,
#: so the bounds are admissible exactly; the shave is defence-in-depth
#: against any future reordering of the member summation, and is orders of
#: magnitude below any code-length gap a prune could ever turn on.
_BOUND_MARGIN = 1.0 - 2.0 ** -40


class QueueScorer:
    """Scores candidate queues against shared, ID-keyed rank tables.

    Wraps (and defers to) a :class:`~repro.complexity.codes.ComplexityEstimator`;
    construct one per estimator and reuse it — the tables it materializes
    are the whole point.
    """

    def __init__(self, estimator: ComplexityEstimator, use_kernel: Optional[bool] = None):
        self.estimator = estimator
        kb = estimator.kb
        self.id_mode = bool(
            estimator.mode == "exact" and getattr(kb, "supports_id_queries", False)
        )
        #: Kernel scoring (default where available): conditional tables
        #: hold *precompiled code lengths* (:func:`~repro.complexity.codes.log2_rank_table`)
        #: and are built decode-free from ID-space prominence scores
        #: (``entity_score_ids`` / ``predicate_score_ids``) when the
        #: prominence model provides them.  ``use_kernel=False`` keeps the
        #: per-probe rank tables — the differential/A-B reference path.
        self.kernel_mode = self.id_mode and use_kernel is not False
        # Conditional rank tables, keyed by interned IDs (ID mode only).
        self._pred_bits: Dict[int, float] = {}
        self._object_ranks: Dict[int, Dict[int, int]] = {}
        self._join_ranks: Dict[int, Dict[int, int]] = {}
        self._closed_ranks: Dict[int, Dict[int, int]] = {}
        self._tail_ranks: Dict[Tuple[int, int], Dict[int, int]] = {}
        # Kernel-mode tables: (bits_by_id, default_bits) per context key.
        _BitsTable = Tuple[Dict[int, float], float]
        self._object_bits: Dict[int, _BitsTable] = {}
        self._join_bits: Dict[int, _BitsTable] = {}
        self._closed_bits: Dict[int, _BitsTable] = {}
        self._tail_bits: Dict[Tuple[int, int], _BitsTable] = {}
        # Table floors memoized for the family-bound probes (kernel mode).
        self._floor_memo: Dict[tuple, float] = {}
        self._watch = EpochWatcher(kb)

    # ------------------------------------------------------------------
    # epoch coherence
    # ------------------------------------------------------------------

    def _sync(self) -> None:
        """Drop ID-keyed rank tables built at an older KB epoch (coarse —
        same argument as the estimator's tables, which the wrapped
        estimator drops through its own guard)."""
        watch = self._watch
        if watch.seen != self.estimator.kb.epoch:
            watch.absorb(None, self.clear_tables)

    @property
    def coherence(self) -> CacheCoherence:
        """Epoch-invalidation telemetry for the shared rank tables."""
        return self._watch.coherence

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------

    def score(self, ses: Sequence[SubgraphExpression]) -> List[float]:
        """Ĉ(ρ) for every expression, in input order.

        Bit-identical to ``[estimator.complexity(se) for se in ses]``.
        """
        if not self.id_mode:
            complexity = self.estimator.complexity
            return [complexity(se) for se in ses]
        return self.score_plans([self._plan(se) for se in ses], ses)

    def score_plans(
        self,
        plans: Sequence[Optional[tuple]],
        ses: Optional[Sequence[SubgraphExpression]] = None,
    ) -> List[float]:
        """Score prebuilt ``(PLAN_*, *ids)`` plans, in input order.

        The candidate engine calls this with plans built directly from
        its ID tuples, skipping the per-SE re-encoding of :meth:`score`.
        *ses* supplies the per-SE fallback for ``None`` plans — and for
        every plan when the ID fast path is off (power-law mode / hash
        backend), where the plans are ignored entirely.
        """
        if not self.id_mode:
            if ses is None:
                raise ValueError("ses is required when the ID fast path is off")
            complexity = self.estimator.complexity
            return [complexity(se) for se in ses]
        self._sync()
        if self.kernel_mode:
            # No pre-pass: the kernel scorer builds a missing table the
            # first time a plan probes it (KeyError path), so the common
            # warm case is a straight scan over the plans.
            score_plan = self._score_plan_kernel
        else:
            self._ensure_tables(plans)
            score_plan = self._score_plan
        if ses is None:
            if any(plan is None for plan in plans):
                raise ValueError("ses is required when any plan is None")
            return [score_plan(plan) for plan in plans]  # type: ignore[arg-type]
        return [
            score_plan(plan) if plan is not None else self.estimator.complexity(se)
            for se, plan in zip(ses, plans)
        ]

    def plan_scorer(self):
        """An epoch-synced single-plan scorer for inline loops.

        Kernel mode only: returns the bound ``plan -> Ĉ bits`` scorer the
        candidate engine calls once per cold queue miss, with the epoch
        check hoisted to this call (the engine's own guard brackets the
        whole queue build).  Tables build on first probe, so there is no
        pre-pass over the plans.
        """
        if not self.kernel_mode:
            raise RuntimeError("plan_scorer() requires kernel mode; use score_plans()")
        self._sync()
        return self._score_plan_kernel

    def family_scorer(self):
        """An epoch-synced ``family -> admissible lower bound`` probe.

        Kernel mode only.  A *family* names every plan sharing a shape and
        its predicate skeleton, before any object is chosen::

            (PLAN_SINGLE, p)            all (p, o) single atoms
            (PLAN_PATH,   p0, p1)       all p0 ⋈ p1 paths, any tail object
            (PLAN_STAR,   p0, pa, pb)   both star atoms' predicates fixed
            (PLAN_CLOSED, anchor, n)    anchor + n closing predicates

        The bound mirrors :meth:`_score_plan_kernel`'s additive formula
        term for term, substituting each object-dependent term with its
        table's floor (:func:`~repro.complexity.codes.rank_table_floor`) —
        the shortest code any member could pay there — so no member of
        the family can score below it.  Floors of tables that are not yet
        resident are taken as 0.0 instead of forcing a build: bounds must
        stay cheap relative to the scoring they prune, and 0.0 is always
        admissible.  Per-predicate join/closed tables (few, and needed by
        any surviving member anyway) *are* built on first probe, because
        ``join.get(p1)`` separates families far better than any floor.
        """
        if not self.kernel_mode:
            raise RuntimeError("family_scorer() requires kernel mode")
        self._sync()
        return self._family_bound

    def _family_bound(self, family: tuple) -> float:
        tag = family[0]
        self._ensure_pred_bits(family[1])
        pred_bits = self._pred_bits
        if tag == PLAN_SINGLE:
            p = family[1]
            bound = pred_bits[p] + self._resident_floor("obj", self._object_bits, p)
        elif tag == PLAN_PATH:
            _, p0, p1 = family
            join, join_default = self._join_table(p0)
            bound = (
                pred_bits[p0]
                + join.get(p1, join_default)
                + self._resident_floor("tail", self._tail_bits, (p0, p1))
            )
        elif tag == PLAN_STAR:
            # Same summation order as the member formula (canonical plan
            # order), so monotone rounded addition keeps the bound exact.
            _, p0, pa, pb = family
            join, join_default = self._join_table(p0)
            bound = pred_bits[p0]
            for p in (pa, pb):
                bound += join.get(p, join_default)
                bound += self._resident_floor("tail", self._tail_bits, (p0, p))
        else:
            _, anchor, extras = family
            bound = pred_bits[anchor] + extras * self._closed_floor(anchor)
        return bound * _BOUND_MARGIN

    def _join_table(self, p0: int):
        try:
            return self._join_bits[p0]
        except KeyError:
            self._build_join_table(p0, self._join_bits)
            return self._join_bits[p0]

    def _closed_floor(self, anchor: int) -> float:
        floor = self._floor_memo.get(("closed", anchor))
        if floor is None:
            if anchor not in self._closed_bits:
                self._build_closed_table(anchor, self._closed_bits)
            floor = rank_table_floor(self._closed_bits[anchor])
            self._floor_memo[("closed", anchor)] = floor
        return floor

    def _resident_floor(self, kind: str, tables: Dict, key) -> float:
        """Floor of an already-materialized table; 0.0 (admissible, free)
        when it is not resident.  Memoized only once resident, so a table
        built later by the scoring loop tightens subsequent probes."""
        memo_key = (kind, key)
        floor = self._floor_memo.get(memo_key)
        if floor is not None:
            return floor
        compiled = tables.get(key)
        if compiled is None:
            return 0.0
        floor = rank_table_floor(compiled)
        self._floor_memo[memo_key] = floor
        return floor

    def table_stats(self) -> Dict[str, int]:
        """How many conditional rankings are resident (serving telemetry).

        Per instance only one family is populated — rank tables in the
        legacy path, code-length tables in kernel mode — so the sums
        report "rankings resident" uniformly across both.
        """
        return {
            "predicate_bits": len(self._pred_bits),
            "object_rank_tables": len(self._object_ranks) + len(self._object_bits),
            "join_rank_tables": len(self._join_ranks) + len(self._join_bits),
            "closed_rank_tables": len(self._closed_ranks) + len(self._closed_bits),
            "tail_rank_tables": len(self._tail_ranks) + len(self._tail_bits),
        }

    def clear_tables(self) -> None:
        """Drop every materialized ranking.

        Runs automatically through the epoch guard when the KB mutates;
        manual calls are never required.
        """
        self._pred_bits.clear()
        self._object_ranks.clear()
        self._join_ranks.clear()
        self._closed_ranks.clear()
        self._tail_ranks.clear()
        self._object_bits.clear()
        self._join_bits.clear()
        self._closed_bits.clear()
        self._tail_bits.clear()
        self._floor_memo.clear()

    # ------------------------------------------------------------------
    # phase 1: group by shape and anchor, encode to ID plans
    # ------------------------------------------------------------------

    def _plan(self, se: SubgraphExpression) -> Optional[tuple]:
        """The (shape, *ids) scoring plan, or None to fall back per-SE."""
        encode = self.estimator.kb.term_id  # type: ignore[attr-defined]
        atoms = se.atoms
        if se.shape is Shape.SINGLE_ATOM:
            atom = atoms[0]
            p, o = encode(atom.predicate), encode(atom.object)
            if p is None or o is None:
                return None
            return (PLAN_SINGLE, p, o)
        if se.shape is Shape.PATH:
            hop, tail = atoms
            p0, p1 = encode(hop.predicate), encode(tail.predicate)
            o = encode(tail.object)
            if p0 is None or p1 is None or o is None:
                return None
            return (PLAN_PATH, p0, p1, o)
        if se.shape is Shape.PATH_STAR:
            hop, star1, star2 = atoms
            ids = (
                encode(hop.predicate),
                encode(star1.predicate),
                encode(star1.object),
                encode(star2.predicate),
                encode(star2.object),
            )
            if None in ids:
                return None
            return (PLAN_STAR,) + ids
        if se.shape in (Shape.CLOSED_2, Shape.CLOSED_3):
            # The cheapest predicate anchors the code (same rank-sorted
            # order as the estimator, so the float summation matches).
            ordered = sorted(
                se.predicates(), key=self.estimator.prominence.predicate_rank
            )
            ids = tuple(encode(p) for p in ordered)
            if None in ids:
                return None
            return (PLAN_CLOSED,) + ids
        raise AssertionError(f"unhandled shape {se.shape}")

    # ------------------------------------------------------------------
    # phase 2: materialize every needed conditional ranking once
    # ------------------------------------------------------------------

    def _ensure_tables(self, plans: Sequence[Optional[tuple]]) -> None:
        """Legacy-path pre-pass (kernel mode builds on first probe)."""
        object_tables = self._object_ranks
        join_tables = self._join_ranks
        closed_tables = self._closed_ranks
        tail_tables = self._tail_ranks
        for plan in plans:
            if plan is None:
                continue
            tag = plan[0]
            if tag == PLAN_SINGLE:
                self._ensure_pred_bits(plan[1])
                if plan[1] not in object_tables:
                    self._build_object_table(plan[1], object_tables)
            elif tag == PLAN_PATH:
                self._ensure_pred_bits(plan[1])
                if plan[1] not in join_tables:
                    self._build_join_table(plan[1], join_tables)
                if (plan[1], plan[2]) not in tail_tables:
                    self._build_tail_table(plan[1], plan[2], tail_tables)
            elif tag == PLAN_STAR:
                self._ensure_pred_bits(plan[1])
                if plan[1] not in join_tables:
                    self._build_join_table(plan[1], join_tables)
                if (plan[1], plan[2]) not in tail_tables:
                    self._build_tail_table(plan[1], plan[2], tail_tables)
                if (plan[1], plan[4]) not in tail_tables:
                    self._build_tail_table(plan[1], plan[4], tail_tables)
            else:
                self._ensure_pred_bits(plan[1])
                if plan[1] not in closed_tables:
                    self._build_closed_table(plan[1], closed_tables)

    def _rank_entity_ids(self, ids) -> Dict[int, int]:
        """Tie-aware prominence ranks for an entity-ID candidate set.

        Kernel mode asks the prominence model for ID-space scores first
        (``entity_score_ids``, e.g. frequency counts straight off the
        interned indexes) and decodes only when the model has no ID path
        (PageRank) — the resulting ranks are identical either way, the
        scores being the same floats.
        """
        ids = set(ids)
        prominence = self.estimator.prominence
        if self.kernel_mode:
            score_ids = getattr(prominence, "entity_score_ids", None)
            scores = score_ids(ids) if score_ids is not None else None
            if scores is not None:
                return _tie_aware_ranks(ids, scores.__getitem__)
        term = self.estimator.kb.term_of_id  # type: ignore[attr-defined]
        score = prominence.entity_score
        return _tie_aware_ranks(ids, lambda i: score(term(i)))

    def _rank_predicate_ids(self, ids) -> Dict[int, int]:
        ids = set(ids)
        prominence = self.estimator.prominence
        if self.kernel_mode:
            score_ids = getattr(prominence, "predicate_score_ids", None)
            scores = score_ids(ids) if score_ids is not None else None
            if scores is not None:
                return _tie_aware_ranks(ids, scores.__getitem__)
        term = self.estimator.kb.term_of_id  # type: ignore[attr-defined]
        score = prominence.predicate_score
        return _tie_aware_ranks(ids, lambda i: score(term(i)))

    def _compiled(self, ranks: Dict[int, int]):
        """Rank table → kernel form (precompiled code lengths) if enabled."""
        return log2_rank_table(ranks) if self.kernel_mode else ranks

    def _ensure_pred_bits(self, p_id: int) -> None:
        if p_id not in self._pred_bits:
            predicate = self.estimator.kb.term_of_id(p_id)  # type: ignore[attr-defined]
            self._pred_bits[p_id] = self.estimator.predicate_bits(predicate)

    def _build_object_table(self, p_id: int, tables: Dict) -> None:
        kb = self.estimator.kb
        tables[p_id] = self._compiled(
            self._rank_entity_ids(kb.object_ids_of_predicate_view(p_id))  # type: ignore[attr-defined]
        )

    def _build_join_table(self, p0_id: int, tables: Dict) -> None:
        tables[p0_id] = self._compiled(
            self._rank_predicate_ids(joinable_predicate_ids(self.estimator.kb, p0_id))
        )

    def _build_closed_table(self, anchor_id: int, tables: Dict) -> None:
        tables[anchor_id] = self._compiled(
            self._rank_predicate_ids(co_occurring_predicate_ids(self.estimator.kb, anchor_id))
        )

    def _build_tail_table(self, p0_id: int, p1_id: int, tables: Dict) -> None:
        tables[(p0_id, p1_id)] = self._compiled(
            self._rank_entity_ids(tail_candidate_ids(self.estimator.kb, p0_id, p1_id))
        )

    # ------------------------------------------------------------------
    # phase 3: one pass over the queue
    # ------------------------------------------------------------------

    def _score_plan(self, plan: tuple) -> float:
        tag = plan[0]
        pred_bits = self._pred_bits
        if tag == PLAN_SINGLE:
            _, p, o = plan
            ranks = self._object_ranks[p]
            return pred_bits[p] + _log2_rank(ranks.get(o, len(ranks) + 1))
        if tag == PLAN_PATH:
            _, p0, p1, o = plan
            join = self._join_ranks[p0]
            tail = self._tail_ranks[(p0, p1)]
            return (
                pred_bits[p0]
                + _log2_rank(join.get(p1, len(join) + 1))
                + _log2_rank(tail.get(o, len(tail) + 1))
            )
        if tag == PLAN_STAR:
            _, p0, p1, o1, p2, o2 = plan
            join = self._join_ranks[p0]
            bits = pred_bits[p0]
            for p, o in ((p1, o1), (p2, o2)):
                tail = self._tail_ranks[(p0, p)]
                bits += _log2_rank(join.get(p, len(join) + 1))
                bits += _log2_rank(tail.get(o, len(tail) + 1))
            return bits
        anchor = plan[1]
        closed = self._closed_ranks[anchor]
        bits = pred_bits[anchor]
        for p in plan[2:]:
            bits += _log2_rank(closed.get(p, len(closed) + 1))
        return bits

    def _score_plan_kernel(self, plan: tuple) -> float:
        """One queue entry against the precompiled code-length tables.

        Same additive formula as :meth:`_score_plan`, but every probe is
        ``table.get(id, default)`` — no ``log2``, no ``max``, no rank
        arithmetic in the loop.  The floats are bit-identical because the
        tables precompiled the very expression the per-probe path
        evaluates (see :func:`~repro.complexity.codes.log2_rank_table`).
        Missing tables surface as ``KeyError`` and are built on the spot
        — the cold path of a warm-by-design loop.
        """
        try:
            tag = plan[0]
            pred_bits = self._pred_bits
            if tag == PLAN_SINGLE:
                _, p, o = plan
                table, default = self._object_bits[p]
                return pred_bits[p] + table.get(o, default)
            if tag == PLAN_PATH:
                _, p0, p1, o = plan
                join, join_default = self._join_bits[p0]
                tail, tail_default = self._tail_bits[(p0, p1)]
                return (
                    pred_bits[p0]
                    + join.get(p1, join_default)
                    + tail.get(o, tail_default)
                )
            if tag == PLAN_STAR:
                _, p0, p1, o1, p2, o2 = plan
                join, join_default = self._join_bits[p0]
                bits = pred_bits[p0]
                for p, o in ((p1, o1), (p2, o2)):
                    tail, tail_default = self._tail_bits[(p0, p)]
                    bits += join.get(p, join_default)
                    bits += tail.get(o, tail_default)
                return bits
            anchor = plan[1]
            closed, closed_default = self._closed_bits[anchor]
            bits = pred_bits[anchor]
            for p in plan[2:]:
                bits += closed.get(p, closed_default)
            return bits
        except KeyError:
            self._build_missing(plan)
            return self._score_plan_kernel(plan)

    def _build_missing(self, plan: tuple) -> None:
        """Materialize every table *plan* needs (kernel-mode cold path)."""
        tag = plan[0]
        self._ensure_pred_bits(plan[1])
        if tag == PLAN_SINGLE:
            if plan[1] not in self._object_bits:
                self._build_object_table(plan[1], self._object_bits)
        elif tag in (PLAN_PATH, PLAN_STAR):
            if plan[1] not in self._join_bits:
                self._build_join_table(plan[1], self._join_bits)
            if (plan[1], plan[2]) not in self._tail_bits:
                self._build_tail_table(plan[1], plan[2], self._tail_bits)
            if tag == PLAN_STAR and (plan[1], plan[4]) not in self._tail_bits:
                self._build_tail_table(plan[1], plan[4], self._tail_bits)
        else:
            if plan[1] not in self._closed_bits:
                self._build_closed_table(plan[1], self._closed_bits)

    def __repr__(self) -> str:
        mode = "kernel" if self.kernel_mode else ("id" if self.id_mode else "fallback")
        return f"QueueScorer(mode={mode}, estimator={self.estimator!r})"
