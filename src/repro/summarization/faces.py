"""A FACES-style diversity-aware entity summarizer.

FACES (Gunaratna et al., AAAI 2015) partitions an entity's features into
*conceptually similar* clusters (the original uses Cobweb hierarchical
clustering over WordNet expansions) and then fills the summary by taking
the best-ranked feature from each cluster in round-robin order — that is
what makes its summaries *diverse*.

Without WordNet offline, we cluster by the strongest conceptual signal the
KB itself carries: the **class of the object** (features whose objects
share an ``rdf:type`` describe the same kind of thing), falling back to
the predicate for untyped objects.  Within a cluster, features rank by the
FACES-like informativeness×popularity product:

* informativeness — inverse feature frequency ``log(N / #subjects(p, o))``
  (rarer features say more about the entity);
* popularity — ``log(1 + fr(o))`` (prominent objects are recognizable).

The round-robin drain across clusters preserves the original's behaviour:
a top-5 summary of an entity with 5 clusters touches every cluster once.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Tuple

from repro.kb.namespaces import RDF_TYPE
from repro.kb.store import KnowledgeBase
from repro.kb.terms import IRI, Term
from repro.summarization.features import Feature, entity_features


class FacesSummarizer:
    """Diversity-aware summaries via conceptual clustering."""

    def __init__(self, kb: KnowledgeBase, type_predicate: IRI = RDF_TYPE):
        self.kb = kb
        self.type_predicate = type_predicate
        self._subject_count = max(1, len(kb.subjects_all()))

    # ------------------------------------------------------------------

    def summarize(self, entity: Term, k: int = 5) -> List[Feature]:
        """The top-*k* diverse features of *entity*."""
        features = entity_features(self.kb, entity)
        if not features:
            return []
        clusters = self._cluster(features)
        ranked_clusters = [
            sorted(cluster, key=lambda f: (-self._score(f), f.predicate.value))
            for cluster in clusters.values()
        ]
        # Strongest clusters first: a cluster's strength is its best feature.
        ranked_clusters.sort(key=lambda c: -self._score(c[0]))
        summary: List[Feature] = []
        round_index = 0
        while len(summary) < k:
            emitted = False
            for cluster in ranked_clusters:
                if round_index < len(cluster):
                    summary.append(cluster[round_index])
                    emitted = True
                    if len(summary) == k:
                        break
            if not emitted:
                break
            round_index += 1
        return summary

    # ------------------------------------------------------------------

    def _cluster(self, features: List[Feature]) -> Dict[Tuple, List[Feature]]:
        """Group features by object class (conceptual similarity proxy)."""
        clusters: Dict[Tuple, List[Feature]] = {}
        for feature in features:
            classes = self.kb.objects(feature.object, self.type_predicate)
            if classes:
                key = ("class", min(c.sort_key() for c in classes))
            else:
                key = ("predicate", feature.predicate.value)
            clusters.setdefault(key, []).append(feature)
        return clusters

    def _score(self, feature: Feature) -> float:
        """Informativeness × popularity, the FACES ranking signal."""
        carriers = self.kb.count(predicate=feature.predicate, obj=feature.object)
        informativeness = math.log(self._subject_count / max(1, carriers))
        popularity = math.log(1 + self.kb.term_frequency(feature.object))
        return informativeness * popularity
