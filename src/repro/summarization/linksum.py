"""A LinkSUM-style link-analysis entity summarizer.

LinkSUM (Thalhammer et al., ICWE 2016) scores candidate objects of an
entity by combining

* **importance** — the object's PageRank in the link graph, and
* **relevance** — a *backlink* signal: objects that link back to the
  entity matter more (in the original, the Backlink method over
  Wikipedia links; here, reciprocal KB links),

then picks, for each selected object, the best predicate connecting the
entity to it (the original uses frequency + exclusivity; we use predicate
frequency).  The α parameter blends the two signals exactly as in the
paper (default 0.9, LinkSUM's published optimum).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.complexity.pagerank import pagerank
from repro.kb.store import KnowledgeBase
from repro.kb.terms import IRI, Term
from repro.summarization.features import Feature, entity_features


class LinkSumSummarizer:
    """PageRank × backlink summaries."""

    def __init__(
        self,
        kb: KnowledgeBase,
        alpha: float = 0.9,
        scores: Optional[Dict[IRI, float]] = None,
    ):
        if not 0.0 <= alpha <= 1.0:
            raise ValueError(f"alpha must be in [0, 1], got {alpha}")
        self.kb = kb
        self.alpha = alpha
        self._pagerank = scores if scores is not None else pagerank(kb)
        self._max_pr = max(self._pagerank.values()) if self._pagerank else 1.0

    # ------------------------------------------------------------------

    def summarize(self, entity: Term, k: int = 5) -> List[Feature]:
        """The top-*k* features of *entity* by blended link score."""
        features = entity_features(self.kb, entity)
        if not features:
            return []
        # Score objects, then keep the best predicate per object — LinkSUM
        # summarizes *objects* first, relations second.
        by_object: Dict[Term, List[Feature]] = {}
        for feature in features:
            by_object.setdefault(feature.object, []).append(feature)
        scored: List[Tuple[float, Feature]] = []
        for obj, candidates in by_object.items():
            score = self._object_score(entity, obj)
            best = max(
                candidates,
                key=lambda f: (self.kb.predicate_fact_count(f.predicate), f.predicate.value),
            )
            scored.append((score, best))
        scored.sort(key=lambda pair: (-pair[0], pair[1].predicate.value))
        return [feature for _, feature in scored[:k]]

    # ------------------------------------------------------------------

    def _object_score(self, entity: Term, obj: Term) -> float:
        importance = self._pagerank.get(obj, 0.0) / self._max_pr  # type: ignore[arg-type]
        backlink = 1.0 if self._links_back(obj, entity) else 0.0
        return self.alpha * importance + (1.0 - self.alpha) * backlink

    def _links_back(self, obj: Term, entity: Term) -> bool:
        if not isinstance(obj, IRI):
            return False
        return any(True for _ in self.kb.triples(subject=obj, obj=entity))
