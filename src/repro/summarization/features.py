"""The feature model for entity summarization.

A *feature* of an entity ``e`` is a predicate-object pair ``(p, o)`` with
``p(e, o)`` in the KB — the unit both FACES and LinkSUM select over, and
the unit of the gold-standard summaries (§4.1.4).

Following the benchmark's setup, ``rdf:type``, ``rdfs:label``, literal
objects and inverse predicates are excluded by default: expert summaries
are built from entity-valued forward attributes.
"""

from __future__ import annotations

from typing import List, NamedTuple, Optional, Set

from repro.kb.inverse import is_inverse
from repro.kb.namespaces import RDF_TYPE, RDFS_LABEL
from repro.kb.store import KnowledgeBase
from repro.kb.terms import IRI, Term


class Feature(NamedTuple):
    """One candidate summary item: a (predicate, object) pair."""

    predicate: IRI
    object: Term

    def __repr__(self) -> str:
        obj = self.object.local_name if isinstance(self.object, IRI) else str(self.object)
        return f"{self.predicate.local_name}→{obj}"


def entity_features(
    kb: KnowledgeBase,
    entity: Term,
    include_types: bool = False,
    include_literals: bool = False,
    include_inverses: bool = False,
    exclude_predicates: Optional[Set[IRI]] = None,
) -> List[Feature]:
    """The candidate features of *entity*, deterministic order."""
    excluded = set(exclude_predicates or ()) | {RDFS_LABEL}
    if not include_types:
        excluded.add(RDF_TYPE)
    features = []
    for predicate, obj in kb.predicate_object_pairs(entity):
        if predicate in excluded:
            continue
        if not include_inverses and is_inverse(predicate):
            continue
        if not include_literals and not isinstance(obj, IRI):
            continue
        features.append(Feature(predicate, obj))
    features.sort(key=lambda f: (f.predicate.value, f.object.sort_key()))
    return features


def feature_frequency(kb: KnowledgeBase, feature: Feature) -> int:
    """How many entities carry this exact feature (its commonness).

    ``count(predicate=, obj=)`` is the cardinality-only query: on every
    backend it reads ``len()`` off the POS row — no binding set is
    materialized and (on dictionary-encoded backends) no term is decoded.
    """
    return kb.count(predicate=feature.predicate, obj=feature.object)
