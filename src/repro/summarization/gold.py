"""The simulated expert panel and gold-standard summaries (§4.1.4).

The FACES/LinkSUM benchmark's reference summaries were hand-built by 7
semantic-web experts choosing predicate-object pairs "with diversity,
prominence, and uniqueness as selection criteria".  We simulate exactly
that committee: each expert scores every candidate feature as a noisy
convex blend of

* **prominence** — recognizability of the object (log frequency);
* **uniqueness** — how specifically the feature pins down the entity
  (inverse carrier count);
* **diversity** — a greedy penalty on picking a second feature with the
  same predicate or the same object class;

with per-expert random weightings and per-item lognormal noise, then picks
its top-5 and top-10 greedily.  The :class:`GoldStandard` keeps all seven
summaries per entity — quality is averaged over experts, as in FACES.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from repro.kb.namespaces import RDF_TYPE
from repro.kb.store import KnowledgeBase
from repro.kb.terms import Term
from repro.summarization.features import Feature, entity_features


@dataclass
class GoldStandard:
    """Per entity: the expert summaries at both sizes."""

    #: entity → list of expert summaries (each a list of features).
    top5: Dict[Term, List[List[Feature]]] = field(default_factory=dict)
    top10: Dict[Term, List[List[Feature]]] = field(default_factory=dict)

    def entities(self) -> List[Term]:
        return list(self.top5)

    def summaries(self, entity: Term, k: int) -> List[List[Feature]]:
        source = self.top5 if k <= 5 else self.top10
        return source.get(entity, [])


class ExpertPanel:
    """Seven simulated experts building reference summaries."""

    def __init__(self, kb: KnowledgeBase, num_experts: int = 7, seed: int = 1234):
        if num_experts < 1:
            raise ValueError("need at least one expert")
        self.kb = kb
        self.num_experts = num_experts
        self.seed = seed
        self._subject_count = max(1, len(kb.subjects_all()))

    # ------------------------------------------------------------------

    def build(self, entities: Sequence[Term]) -> GoldStandard:
        """Reference summaries (5 and 10 features) for every entity."""
        gold = GoldStandard()
        for entity in entities:
            features = entity_features(self.kb, entity)
            if not features:
                continue
            fives, tens = [], []
            for expert_index in range(self.num_experts):
                rng = random.Random((self.seed, expert_index, str(entity)).__hash__())
                ranked = self._expert_ranking(entity, features, rng)
                fives.append(ranked[:5])
                tens.append(ranked[:10])
            gold.top5[entity] = fives
            gold.top10[entity] = tens
        return gold

    # ------------------------------------------------------------------

    def _expert_ranking(
        self, entity: Term, features: List[Feature], rng: random.Random
    ) -> List[Feature]:
        """One expert's greedy diverse ranking of the candidate features."""
        w_prominence = 0.3 + 0.4 * rng.random()
        w_uniqueness = 1.0 - w_prominence
        base: List[Tuple[float, Feature]] = []
        for feature in features:
            carriers = self.kb.count(predicate=feature.predicate, obj=feature.object)
            uniqueness = math.log(self._subject_count / max(1, carriers))
            prominence = math.log(1 + self.kb.term_frequency(feature.object))
            noise = rng.lognormvariate(0.0, 0.35)
            score = (w_prominence * prominence + w_uniqueness * uniqueness) * noise
            base.append((score, feature))
        base.sort(key=lambda pair: (-pair[0], pair[1].predicate.value))

        # Greedy diversity: demote features repeating a predicate or an
        # already-covered object class.
        chosen: List[Feature] = []
        seen_predicates: set = set()
        seen_classes: set = set()
        pool = base[:]
        while pool:
            best_index = 0
            best_value = -math.inf
            for index, (score, feature) in enumerate(pool):
                penalty = 0.0
                if feature.predicate in seen_predicates:
                    penalty += 0.5 * abs(score)
                classes = frozenset(self.kb.objects(feature.object, RDF_TYPE))
                if classes and classes <= seen_classes:
                    penalty += 0.25 * abs(score)
                value = score - penalty
                if value > best_value:
                    best_value, best_index = value, index
            score, feature = pool.pop(best_index)
            chosen.append(feature)
            seen_predicates.add(feature.predicate)
            seen_classes |= set(self.kb.objects(feature.object, RDF_TYPE))
        return chosen
