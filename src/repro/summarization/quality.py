"""The summary quality metric of FACES (§4.1.4).

"Quality is defined in [8] as the average overlap between the reported and
the gold standard summaries.  This overlap can be calculated at the level
of the object entities (O) or the pairs predicate-object (PO)."

Given a system summary ``S`` and the expert summaries ``E1..En``::

    quality(S) = (1/n) · Σᵢ |S ∩ Eᵢ|

so for top-5 the metric lives in [0, 5] and for top-10 in [0, 10]
(Table 3's columns).
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Tuple

from repro.summarization.features import Feature


def quality_pair(summary: Sequence[Feature], expert_summaries: Sequence[Sequence[Feature]]) -> float:
    """Average PO-level overlap: (predicate, object) pairs must match."""
    if not expert_summaries:
        return 0.0
    mine = {(f.predicate, f.object) for f in summary}
    overlaps = [
        len(mine & {(f.predicate, f.object) for f in expert})
        for expert in expert_summaries
    ]
    return sum(overlaps) / len(expert_summaries)


def quality_object(summary: Sequence[Feature], expert_summaries: Sequence[Sequence[Feature]]) -> float:
    """Average O-level overlap: object entities must match."""
    if not expert_summaries:
        return 0.0
    mine = {f.object for f in summary}
    overlaps = [len(mine & {f.object for f in expert}) for expert in expert_summaries]
    return sum(overlaps) / len(expert_summaries)


def summary_quality(
    summaries: "dict",
    gold,
    k: int,
) -> Tuple[float, float, float, float]:
    """Aggregate Table 3 cells over a set of entities.

    *summaries* maps entity → system summary; *gold* is a
    :class:`~repro.summarization.gold.GoldStandard`.  Returns
    ``(mean_PO, std_PO, mean_O, std_O)``.
    """
    po_scores: List[float] = []
    o_scores: List[float] = []
    for entity, summary in summaries.items():
        experts = gold.summaries(entity, k)
        if not experts:
            continue
        po_scores.append(quality_pair(summary, experts))
        o_scores.append(quality_object(summary, experts))
    return (_mean(po_scores), _std(po_scores), _mean(o_scores), _std(o_scores))


def _mean(values: Iterable[float]) -> float:
    values = list(values)
    return sum(values) / len(values) if values else 0.0


def _std(values: Iterable[float]) -> float:
    values = list(values)
    if len(values) < 2:
        return 0.0
    mean = _mean(values)
    return (sum((v - mean) ** 2 for v in values) / (len(values) - 1)) ** 0.5
