"""Entity summarization: the Table 3 baselines and gold standard.

§4.1.4 evaluates REMI on the FACES/LinkSUM benchmark: reference summaries
of 5 and 10 predicate-object pairs for 80 prominent DBpedia entities,
hand-picked by 7 semantic-web experts with *diversity*, *prominence* and
*uniqueness* as criteria.

* :mod:`repro.summarization.features` — the feature model ((p, o) pairs);
* :mod:`repro.summarization.faces`    — FACES-style diversity-aware
  summarizer (conceptual clustering + per-cluster ranking);
* :mod:`repro.summarization.linksum`  — LinkSUM-style link-analysis
  summarizer (PageRank importance × backlink relevance);
* :mod:`repro.summarization.gold`     — the simulated expert panel;
* :mod:`repro.summarization.quality`  — the average-overlap quality
  metric at the O (object) and PO (predicate-object) levels.
"""

from repro.summarization.faces import FacesSummarizer
from repro.summarization.features import Feature, entity_features
from repro.summarization.gold import ExpertPanel, GoldStandard
from repro.summarization.linksum import LinkSumSummarizer
from repro.summarization.quality import quality_object, quality_pair, summary_quality

__all__ = [
    "ExpertPanel",
    "FacesSummarizer",
    "Feature",
    "GoldStandard",
    "LinkSumSummarizer",
    "entity_features",
    "quality_object",
    "quality_pair",
    "summary_quality",
]
