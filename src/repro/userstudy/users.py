"""The simulated participant model.

A :class:`SimulatedUser` perceives the simplicity of a subgraph expression
as a noisy transformation of the concepts' true prominence, with the two
systematic biases §4.1 documents:

* a strong preference for ``rdf:type`` atoms (drives Table 2's low p@1);
* a comprehension cost for extra atoms and existential variables (drives
  the §4.1.3 dislike of convoluted descriptions).

Interestingness (§4.1.3's 1–5 grades) additionally weighs *pertinence*:
whether the description's constants live in the same domain as the target
entity (the Neil-Armstrong-buried-in-the-Atlantic effect).
"""

from __future__ import annotations

import math
import random
from typing import List, Optional, Sequence

from repro.complexity.ranking import Prominence
from repro.expressions.expression import Expression
from repro.expressions.subgraph import SubgraphExpression
from repro.kb.namespaces import RDF_TYPE
from repro.kb.store import KnowledgeBase
from repro.kb.terms import IRI, Term


class SimulatedUser:
    """One participant with personal noise and bias levels."""

    def __init__(
        self,
        kb: KnowledgeBase,
        prominence: Prominence,
        rng: random.Random,
        type_preference: float = 3.0,
        atom_cost: float = 1.2,
        variable_cost: float = 0.8,
        noise_sigma: float = 0.5,
    ):
        self.kb = kb
        self.prominence = prominence
        self.rng = rng
        # Individual trait variation around the population means.
        self.type_preference = max(0.0, rng.gauss(type_preference, 0.8))
        self.atom_cost = max(0.1, rng.gauss(atom_cost, 0.3))
        self.variable_cost = max(0.0, rng.gauss(variable_cost, 0.3))
        self.noise_sigma = noise_sigma
        # Normalizer turning raw prominence scores into surprisal bits:
        # a concept carrying `score` of the KB's ~2·|K| mention slots is
        # perceived as -log2(score / scale) bits of unfamiliarity.
        self._scale = max(2.0, 2.0 * float(len(kb)))

    # ------------------------------------------------------------------

    def perceived_complexity(self, se: SubgraphExpression) -> float:
        """Lower = simpler, in the user's subjective units."""
        familiarity = 0.0
        for predicate in se.predicates():
            familiarity += self._concept_bits(self.prominence.predicate_score(predicate))
        for constant in se.constants():
            familiarity += self._concept_bits(self.prominence.entity_score(constant))
        structural = self.atom_cost * (se.size - 1)
        if se.uses_variable:
            structural += self.variable_cost
        type_bonus = (
            self.type_preference
            if any(p == RDF_TYPE for p in se.predicates())
            else 0.0
        )
        noise = self.rng.lognormvariate(0.0, self.noise_sigma)
        return (familiarity + structural - type_bonus) * noise

    def rank_by_simplicity(
        self, expressions: Sequence[SubgraphExpression]
    ) -> List[SubgraphExpression]:
        """The user's ranking, simplest first (ties broken at random)."""
        jitter = {se: self.rng.random() for se in expressions}
        return sorted(
            expressions, key=lambda se: (self.perceived_complexity(se), jitter[se])
        )

    def expression_complexity(self, expression: Expression) -> float:
        """Perceived complexity of a full RE (conjuncts add up)."""
        return sum(self.perceived_complexity(se) for se in expression.conjuncts)

    def rank_expressions(self, expressions: Sequence[Expression]) -> List[Expression]:
        jitter = {e: self.rng.random() for e in expressions}
        return sorted(
            expressions, key=lambda e: (self.expression_complexity(e), jitter[e])
        )

    # ------------------------------------------------------------------

    def interestingness(self, expression: Expression, target: Term) -> int:
        """A 1–5 grade: informative + pertinent + concise scores high."""
        if expression.is_top:
            return 1
        informativeness = 0.0
        constants = 0
        for se in expression.conjuncts:
            for constant in se.constants():
                constants += 1
                informativeness += self._concept_bits(
                    self.prominence.entity_score(constant)
                )
        mean_bits = informativeness / constants if constants else 6.0
        # Concepts a user recognizes sit low in bits → interesting.
        base = 5.3 - 0.24 * mean_bits
        base -= 0.35 * max(0, expression.size - 1)  # verbosity cost
        if not self._pertinent(expression, target):
            base -= 1.0  # the Buddhism-movie effect
        noisy = base + self.rng.gauss(0.0, 0.6)
        return int(min(5, max(1, round(noisy))))

    def _pertinent(self, expression: Expression, target: Term) -> bool:
        """Do the description's constants share a class with the target's
        neighbourhood?  A crude but causal pertinence proxy."""
        target_classes = set(self.kb.objects(target, RDF_TYPE))
        for _, obj in self.kb.predicate_object_pairs(target):
            target_classes |= self.kb.objects(obj, RDF_TYPE)
        if not target_classes:
            return True
        for se in expression.conjuncts:
            for constant in se.constants():
                if not isinstance(constant, IRI):
                    continue
                classes = self.kb.objects(constant, RDF_TYPE)
                if classes and not (classes & target_classes):
                    return False
        return True

    def _concept_bits(self, score: float) -> float:
        """Surprisal of a concept: 0 bits for one that dominates the KB,
        ~log2(scale) for a hapax, capped at 20 for unseen concepts."""
        if score <= 0:
            return 20.0
        return min(20.0, max(0.0, math.log2(self._scale) - math.log2(score)))


class UserPanel:
    """A reproducible cohort of simulated participants."""

    def __init__(
        self,
        kb: KnowledgeBase,
        prominence: Prominence,
        size: int = 48,
        seed: int = 2020,
        **user_kwargs,
    ):
        if size < 1:
            raise ValueError("panel needs at least one user")
        master = random.Random(seed)
        self.users = [
            SimulatedUser(kb, prominence, random.Random(master.getrandbits(64)), **user_kwargs)
            for _ in range(size)
        ]

    def __iter__(self):
        return iter(self.users)

    def __len__(self) -> int:
        return len(self.users)
