"""The four study harnesses of §4.1.

Each function reproduces one experimental protocol with a
:class:`~repro.userstudy.users.UserPanel` standing in for the cohort:

* :func:`study_rank_subgraphs` — §4.1.1 / Table 2: users rank five
  subgraph expressions (Ĉ's top 3 + the worst-ranked + a random one) by
  simplicity; report precision@{1,2,3} between Ĉ and the users;
* :func:`study_remi_output` — §4.1.2: users rank REMI's answer against
  alternative REs met during traversal; report MAP with REMI's answer as
  the single relevant item;
* :func:`study_interestingness` — §4.1.3: users grade descriptions 1–5;
* :func:`study_variant_preference` — §4.1.2's last question: given the
  Ĉfr and Ĉpr answers, which do users find simpler?
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.remi import REMI
from repro.expressions.expression import Expression
from repro.expressions.subgraph import SubgraphExpression
from repro.kb.terms import Term
from repro.userstudy.metrics import average_precision, mean_std, precision_at_k
from repro.userstudy.users import UserPanel


@dataclass
class StudyOneResult:
    """Table 2 cells: precision@k mean ± std, plus the response count."""

    responses: int = 0
    precision: Dict[int, Tuple[float, float]] = field(default_factory=dict)
    sets_evaluated: int = 0

    def row(self) -> str:
        cells = "  ".join(
            f"p@{k} {mean:.2f}±{std:.2f}" for k, (mean, std) in sorted(self.precision.items())
        )
        return f"n={self.responses}  {cells}"


@dataclass
class StudyTwoResult:
    """§4.1.2: MAP of REMI's answer in the users' rankings."""

    responses: int = 0
    map_score: float = 0.0
    map_std: float = 0.0
    sets_evaluated: int = 0


@dataclass
class StudyThreeResult:
    """§4.1.3: interestingness grades."""

    responses: int = 0
    mean_score: float = 0.0
    std_score: float = 0.0
    descriptions: int = 0
    scoring_at_least_3: int = 0


def study_rank_subgraphs(
    miner: REMI,
    entity_sets: Sequence[Sequence[Term]],
    panel: UserPanel,
    responses_per_set: int = 2,
    num_stimuli: int = 5,
    seed: int = 99,
) -> StudyOneResult:
    """§4.1.1: rank five subgraph expressions by simplicity."""
    rng = random.Random(seed)
    result = StudyOneResult()
    p_scores: Dict[int, List[float]] = {1: [], 2: [], 3: []}
    users = list(panel)
    for targets in entity_sets:
        queue = miner.candidates(targets)
        if len(queue) < num_stimuli:
            continue
        ranked = [se for se, _ in queue]
        # Stimuli: Ĉ's top 3, the worst ranked, and one random mid-rank.
        stimuli = ranked[:3] + [ranked[-1]]
        middle = ranked[3:-1]
        stimuli.append(rng.choice(middle) if middle else ranked[3])
        system_order = [se for se in ranked if se in set(stimuli)]
        result.sets_evaluated += 1
        for _ in range(responses_per_set):
            user = rng.choice(users)
            user_order = user.rank_by_simplicity(stimuli)
            for k in (1, 2, 3):
                p_scores[k].append(precision_at_k(system_order, user_order, k))
            result.responses += 1
    for k, scores in p_scores.items():
        result.precision[k] = mean_std(scores)
    return result


def _dissimilar_alternatives(
    solution: Expression,
    encountered: List[Tuple[Expression, float]],
    limit: int,
) -> List[Expression]:
    """Pick alternatives that are not proper sub/supersets of each other
    or of the solution (the paper's 'not too similar' constraint)."""
    chosen: List[Expression] = [solution]
    for expression, _ in sorted(encountered, key=lambda pair: pair[1]):
        if len(chosen) - 1 >= limit:
            break
        candidate_sets = frozenset(expression.conjuncts)
        too_similar = False
        for existing in chosen:
            existing_set = frozenset(existing.conjuncts)
            if candidate_sets <= existing_set or existing_set <= candidate_sets:
                too_similar = True
                break
        if not too_similar:
            chosen.append(expression)
    return chosen[1:]


def study_remi_output(
    miner: REMI,
    entity_sets: Sequence[Sequence[Term]],
    panel: UserPanel,
    responses_per_set: int = 3,
    max_alternatives: int = 4,
    seed: int = 77,
) -> StudyTwoResult:
    """§4.1.2: MAP of REMI's answer among alternative REs."""
    rng = random.Random(seed)
    users = list(panel)
    ap_scores: List[float] = []
    sets_evaluated = 0
    for targets in entity_sets:
        mined = miner.mine(targets, collect_encountered=True)
        if not mined.found:
            continue
        alternatives = _dissimilar_alternatives(
            mined.expression, mined.encountered, max_alternatives
        )
        if not alternatives:
            continue
        stimuli = [mined.expression] + alternatives
        sets_evaluated += 1
        for _ in range(responses_per_set):
            user = rng.choice(users)
            ranking = user.rank_expressions(stimuli)
            ap_scores.append(average_precision(mined.expression, ranking))
    mean, std = mean_std(ap_scores)
    return StudyTwoResult(
        responses=len(ap_scores),
        map_score=mean,
        map_std=std,
        sets_evaluated=sets_evaluated,
    )


def study_interestingness(
    miner: REMI,
    entities: Sequence[Term],
    panel: UserPanel,
    responses_per_description: int = 3,
    seed: int = 55,
) -> StudyThreeResult:
    """§4.1.3: 1–5 interestingness grades for mined descriptions."""
    rng = random.Random(seed)
    users = list(panel)
    grades: List[float] = []
    description_means: List[float] = []
    descriptions = 0
    for entity in entities:
        mined = miner.mine([entity])
        if not mined.found:
            continue
        descriptions += 1
        local: List[int] = []
        for _ in range(responses_per_description):
            user = rng.choice(users)
            local.append(user.interestingness(mined.expression, entity))
        grades.extend(local)
        description_means.append(sum(local) / len(local))
    mean, std = mean_std(grades)
    return StudyThreeResult(
        responses=len(grades),
        mean_score=mean,
        std_score=std,
        descriptions=descriptions,
        scoring_at_least_3=sum(1 for m in description_means if m >= 3.0),
    )


def study_variant_preference(
    miner_fr: REMI,
    miner_pr: REMI,
    entity_sets: Sequence[Sequence[Term]],
    panel: UserPanel,
    responses_per_set: int = 3,
    seed: int = 33,
) -> Tuple[float, int, int]:
    """§4.1.2's closing question: Ĉfr's answer vs Ĉpr's answer.

    Returns ``(share_preferring_fr, responses, identical_solutions)``.
    """
    rng = random.Random(seed)
    users = list(panel)
    fr_votes = 0
    total = 0
    identical = 0
    for targets in entity_sets:
        fr_result = miner_fr.mine(targets)
        pr_result = miner_pr.mine(targets)
        if not (fr_result.found and pr_result.found):
            continue
        if fr_result.expression == pr_result.expression:
            identical += 1
            continue
        for _ in range(responses_per_set):
            user = rng.choice(users)
            pair = [fr_result.expression, pr_result.expression]
            preferred = user.rank_expressions(pair)[0]
            if preferred == fr_result.expression:
                fr_votes += 1
            total += 1
    share = fr_votes / total if total else 0.0
    return share, total, identical
