"""Simulated user studies (paper §4.1.1–§4.1.3).

The paper's qualitative evaluation rests on three studies with human
participants (CS students, researchers, staff and their friends).  Humans
are unavailable to an offline reproduction, so this package simulates the
*mechanisms* the paper itself identifies in its participants:

* perceived simplicity tracks concept prominence, but noisily
  (per-user and per-item lognormal noise);
* users systematically over-prefer ``rdf:type`` atoms ("people usually
  deem the predicate type the simplest whereas REMI often ranks it second
  or third" — the stated cause of the low precision@1 in Table 2);
* extra atoms and existential variables carry a comprehension cost;
* interestingness further depends on *pertinence* — descriptions through
  domain-unrelated concepts (the Buddhism movie example) score badly.

Because the simulation encodes causes rather than target numbers, the
reproduced patterns (p@1 ≪ p@3, MAP ≈ 0.6, middling interestingness)
emerge for the paper's reasons instead of by curve fitting.

* :mod:`repro.userstudy.users`   — the participant model;
* :mod:`repro.userstudy.metrics` — p@k, average precision, MAP;
* :mod:`repro.userstudy.studies` — the four study harnesses.
"""

from repro.userstudy.metrics import average_precision, mean_std, precision_at_k
from repro.userstudy.studies import (
    StudyOneResult,
    StudyThreeResult,
    StudyTwoResult,
    study_interestingness,
    study_rank_subgraphs,
    study_remi_output,
    study_variant_preference,
)
from repro.userstudy.users import SimulatedUser, UserPanel

__all__ = [
    "SimulatedUser",
    "StudyOneResult",
    "StudyThreeResult",
    "StudyTwoResult",
    "UserPanel",
    "average_precision",
    "mean_std",
    "precision_at_k",
    "study_interestingness",
    "study_rank_subgraphs",
    "study_remi_output",
    "study_variant_preference",
]
