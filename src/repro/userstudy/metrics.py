"""Ranking-agreement metrics for the user studies.

Table 2 reports precision@k between Ĉ's ranking and each user's ranking;
§4.1.2 reports MAP treating REMI's answer as the single relevant item.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Tuple, TypeVar

T = TypeVar("T")


def precision_at_k(system: Sequence[T], user: Sequence[T], k: int) -> float:
    """|top-k(system) ∩ top-k(user)| / k."""
    if k < 1:
        raise ValueError(f"k must be ≥ 1, got {k}")
    return len(set(system[:k]) & set(user[:k])) / k


def average_precision(relevant: T, user_ranking: Sequence[T]) -> float:
    """AP with a single relevant item: 1 / (its 1-based rank); 0 if absent."""
    for index, item in enumerate(user_ranking, start=1):
        if item == relevant:
            return 1.0 / index
    return 0.0


def mean_std(values: Iterable[float]) -> Tuple[float, float]:
    """(mean, sample standard deviation) — the paper's ± notation."""
    data: List[float] = list(values)
    if not data:
        return 0.0, 0.0
    mean = sum(data) / len(data)
    if len(data) < 2:
        return mean, 0.0
    variance = sum((v - mean) ** 2 for v in data) / (len(data) - 1)
    return mean, variance ** 0.5
