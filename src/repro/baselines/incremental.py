"""Reiter & Dale's Incremental Algorithm [13] (paper §5).

The classic NLG workhorse: walk a fixed *preference order* of predicates;
for each, add the target's attribute if it removes at least one remaining
distractor; stop when no distractors remain.  Properties the paper
leans on:

* fast (one pass, no search) but may **overspecify** — included
  attributes are never retracted, so the result can contain redundant
  atoms (Pechmann's referential overspecification, [12]);
* the preference order stands in for lexical preference / user
  knowledge; the original expects it hand-built per domain.  We default
  to predicate frequency (most common predicates first), and callers can
  pass an explicit order — which is exactly the "manually-constructed
  ranking of predicates" the paper says becomes tedious on large KBs.

Multi-target generalization: an attribute is usable when *all* targets
carry it; distractors are the entities sharing every attribute chosen so
far.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Set

from repro.expressions.expression import Expression
from repro.expressions.matching import Matcher
from repro.expressions.subgraph import SubgraphExpression
from repro.kb.namespaces import RDFS_LABEL
from repro.kb.store import KnowledgeBase
from repro.kb.terms import IRI, Term


class IncrementalMiner:
    """Greedy attribute selection along a predicate preference order."""

    def __init__(
        self,
        kb: KnowledgeBase,
        preference_order: Optional[Sequence[IRI]] = None,
        matcher: Optional[Matcher] = None,
    ):
        self.kb = kb
        self.matcher = matcher or Matcher(kb)
        if preference_order is None:
            preference_order = sorted(
                kb.predicates(),
                key=lambda p: (-kb.predicate_fact_count(p), p.value),
            )
        self.preference_order = [p for p in preference_order if p != RDFS_LABEL]

    def mine(self, targets: Sequence[Term]) -> Optional[Expression]:
        """An RE via greedy selection, or None if the order cannot
        eliminate every distractor."""
        target_set = frozenset(targets)
        if not target_set:
            raise ValueError("need at least one target entity")

        chosen: List[SubgraphExpression] = []
        distractors: Optional[Set[Term]] = None  # None = "everything else"
        for predicate in self.preference_order:
            shared_objects = None
            for t in target_set:
                objects = self.kb.objects(t, predicate)
                shared_objects = (
                    set(objects) if shared_objects is None else shared_objects & objects
                )
                if not shared_objects:
                    break
            if not shared_objects:
                continue
            for obj in sorted(shared_objects, key=lambda o: (o._sort_kind, o.sort_key())):
                atom = SubgraphExpression.single_atom(predicate, obj)
                extension = self.matcher.bindings(atom)
                remaining = (
                    extension - target_set
                    if distractors is None
                    else distractors & extension
                )
                rules_out = (
                    distractors is None or len(remaining) < len(distractors)
                )
                if rules_out:
                    chosen.append(atom)
                    distractors = remaining
                    if not distractors:
                        return Expression(tuple(chosen))
        return None

    def overspecification(self, expression: Expression, targets: Sequence[Term]) -> int:
        """How many conjuncts are redundant — the [12] measure.

        A conjunct is redundant when dropping it leaves the expression an
        RE for the targets.  REMI's Ĉ-minimal answers score 0 by
        construction (a test pins this down); the incremental algorithm
        often does not.
        """
        target_set = frozenset(targets)
        redundant = 0
        conjuncts = expression.conjuncts
        for index in range(len(conjuncts)):
            reduced = Expression(conjuncts[:index] + conjuncts[index + 1 :])
            if not reduced.is_top and self.matcher.identifies(reduced, target_set):
                redundant += 1
        return redundant
