"""Classic NLG referring-expression baselines (paper §5).

The related-work algorithms REMI is positioned against:

* :mod:`repro.baselines.full_brevity` — Dale's Full Brevity algorithm
  [3]: breadth-first search for the *shortest* RE (fewest atoms) in the
  standard language, ignoring intuitiveness;
* :mod:`repro.baselines.incremental` — Reiter & Dale's Incremental
  Algorithm [13]: greedy attribute selection along a fixed preference
  order of predicates, the classic fast-but-overspecifying NLG method.

Both operate in the standard language bias (bound atoms on the root
variable only), exactly as §5 describes the prior art.

So the baselines can be served through the same front door as REMI
(:data:`repro.registry.MINERS` keys ``full-brevity`` and
``incremental``), :class:`FullBrevityAdapter` and
:class:`IncrementalAdapter` wrap them in the miner protocol: REMI's
constructor signature and :class:`~repro.core.results.MiningResult`
returns, with Ĉ scored post-hoc by a shared estimator so outcomes stay
comparable across miners.
"""

from __future__ import annotations

import math
import time
from typing import Sequence, Union

from repro.baselines.full_brevity import FullBrevityMiner
from repro.baselines.incremental import IncrementalMiner
from repro.core.results import MiningResult, SearchStats
from repro.kb.terms import Term


class _BaselineAdapter:
    """The miner-protocol shell around one §5 baseline.

    Mirrors enough of REMI's surface for :class:`~repro.core.batch.BatchMiner`
    and the service façade to treat a baseline as just another registry
    entry: same constructor keywords (extra ones the baseline cannot
    honour are accepted and ignored), a ``matcher``/``estimator`` pair
    for cache sharing and telemetry, and ``mine()`` returning a
    :class:`~repro.core.results.MiningResult` whose ``complexity`` is the
    Ĉ of the baseline's answer (∞ when it found none) — baselines do not
    *optimize* Ĉ, but scoring their output makes runs comparable.
    """

    def __init__(
        self,
        kb,
        prominence: Union[str, "object"] = "fr",
        mode: str = "exact",
        config=None,
        matcher=None,
        estimator=None,
    ):
        from repro.core.config import MinerConfig
        from repro.core.remi import resolve_prominence
        from repro.expressions.matching import Matcher
        from repro.kb.epoch import EpochWatcher
        from repro.registry import ESTIMATORS

        self.kb = kb
        self.config = config or MinerConfig()
        self.prominence = resolve_prominence(kb, prominence)
        self.matcher = matcher or Matcher(kb)
        self.estimator = estimator or ESTIMATORS.create(mode, kb, self.prominence)
        self._impl = self._build()
        # The wrapped baseline may snapshot KB-derived state at build time
        # (IncrementalMiner freezes its predicate preference order), so it
        # is rebuilt whenever the KB mutates — same epoch protocol as
        # every other derived cache.
        self._watch = EpochWatcher(kb)

    def _build(self):
        raise NotImplementedError

    def _rebuild_impl(self) -> None:
        self._impl = self._build()

    def mine(
        self, targets: Sequence[Term], collect_encountered: bool = False
    ) -> MiningResult:
        if self._watch.seen != self.kb.epoch:
            self._watch.absorb(None, self._rebuild_impl)
        stats = SearchStats()
        started = time.perf_counter()
        expression = self._impl.mine(list(targets))
        complexity = math.inf
        if expression is not None:
            complexity = sum(self.estimator.complexity(se) for se in expression)
        stats.total_seconds = time.perf_counter() - started
        encountered = (
            [(expression, complexity)]
            if collect_encountered and expression is not None
            else []
        )
        return MiningResult(
            targets=tuple(targets),
            expression=expression,
            complexity=complexity,
            stats=stats,
            encountered=encountered,
        )


class FullBrevityAdapter(_BaselineAdapter):
    """Dale's Full Brevity behind the ``full-brevity`` registry key."""

    def _build(self) -> FullBrevityMiner:
        return FullBrevityMiner(
            self.kb,
            timeout_seconds=self.config.timeout_seconds,
            matcher=self.matcher,
        )


class IncrementalAdapter(_BaselineAdapter):
    """Reiter & Dale's Incremental Algorithm behind ``incremental``."""

    def _build(self) -> IncrementalMiner:
        return IncrementalMiner(self.kb, matcher=self.matcher)


__all__ = [
    "FullBrevityAdapter",
    "FullBrevityMiner",
    "IncrementalAdapter",
    "IncrementalMiner",
]
