"""Classic NLG referring-expression baselines (paper §5).

The related-work algorithms REMI is positioned against:

* :mod:`repro.baselines.full_brevity` — Dale's Full Brevity algorithm
  [3]: breadth-first search for the *shortest* RE (fewest atoms) in the
  standard language, ignoring intuitiveness;
* :mod:`repro.baselines.incremental` — Reiter & Dale's Incremental
  Algorithm [13]: greedy attribute selection along a fixed preference
  order of predicates, the classic fast-but-overspecifying NLG method.

Both operate in the standard language bias (bound atoms on the root
variable only), exactly as §5 describes the prior art.
"""

from repro.baselines.full_brevity import FullBrevityMiner
from repro.baselines.incremental import IncrementalMiner

__all__ = ["FullBrevityMiner", "IncrementalMiner"]
