"""Dale's Full Brevity algorithm [3] (paper §5).

"The full brevity algorithm, based on breadth-first search, is among the
first approaches to mine REs on semantic data.  This method mines short
REs consisting of conjunctions of bound atoms."

Given targets ``T``, the algorithm searches conjunctions of the targets'
shared (predicate, object) attributes by increasing *atom count* and
returns the first (i.e. shortest) conjunction whose extension is exactly
``T``.  Intuitiveness plays no role — which is precisely the paper's
criticism: ``capitalOf(x, France)`` and ``restingPlaceOf(x, V. Hugo)``
are equally good to Full Brevity.

Ties at the same length are broken deterministically (lexicographic atom
order), and an optional ``ranker`` callback lets callers re-rank
solutions of the winning length — handy for comparing against Ĉ.
"""

from __future__ import annotations

import time
from itertools import combinations
from typing import Callable, List, Optional, Sequence, Set, Tuple

from repro.expressions.expression import Expression
from repro.expressions.matching import Matcher
from repro.expressions.subgraph import SubgraphExpression
from repro.kb.namespaces import RDFS_LABEL
from repro.kb.store import KnowledgeBase
from repro.kb.terms import Term


class FullBrevityMiner:
    """Shortest-RE search in the standard language bias."""

    def __init__(
        self,
        kb: KnowledgeBase,
        max_atoms: int = 4,
        timeout_seconds: Optional[float] = None,
        matcher: Optional[Matcher] = None,
    ):
        if max_atoms < 1:
            raise ValueError(f"max_atoms must be ≥ 1, got {max_atoms}")
        self.kb = kb
        self.max_atoms = max_atoms
        self.timeout_seconds = timeout_seconds
        self.matcher = matcher or Matcher(kb)

    def shared_attributes(self, targets: Sequence[Term]) -> List[SubgraphExpression]:
        """The bound atoms common to all targets, deterministically ordered."""
        shared: Optional[Set[Tuple]] = None
        for t in targets:
            pairs = {
                (p, o)
                for p, o in self.kb.predicate_object_pairs(t)
                if p != RDFS_LABEL
            }
            shared = pairs if shared is None else shared & pairs
        atoms = [
            SubgraphExpression.single_atom(p, o) for p, o in (shared or set())
        ]
        atoms.sort(key=SubgraphExpression.sort_key)
        return atoms

    def mine(
        self,
        targets: Sequence[Term],
        ranker: Optional[Callable[[Expression], float]] = None,
    ) -> Optional[Expression]:
        """The shortest RE for *targets*, or None when none exists.

        With *ranker*, all REs of the winning length are collected and the
        one minimizing the callback is returned.
        """
        target_set = frozenset(targets)
        if not target_set:
            raise ValueError("need at least one target entity")
        deadline = (
            time.perf_counter() + self.timeout_seconds
            if self.timeout_seconds is not None
            else None
        )
        attributes = self.shared_attributes(targets)
        for length in range(1, min(self.max_atoms, len(attributes)) + 1):
            winners: List[Expression] = []
            for combo in combinations(attributes, length):
                if deadline is not None and time.perf_counter() > deadline:
                    return winners[0] if winners else None
                expression = Expression(tuple(combo))
                if self.matcher.identifies(expression, target_set):
                    if ranker is None:
                        return expression  # BFS: first hit is shortest
                    winners.append(expression)
            if winners:
                return min(winners, key=ranker)  # type: ignore[arg-type]
        return None
