"""An AMIE-style breadth-first Horn-rule miner, used as REMI's opponent.

Faithful to the AMIE(+) algorithm as §4.2.1 configures it:

* rules ``ψ(x, True) ⇐ body`` over the KB, explored breadth-first;
* three refinement operators — **dangling** atoms (one fresh variable),
  **instantiated** atoms (one constant argument) and **closing** atoms
  (two existing variables);
* support threshold ``|T|`` (every target must be predicted), confidence
  threshold 1.0 (no entity outside ``T`` may match), maximum length
  ``l = 4`` (head + 3 body atoms);
* only *closed* rules are reported.

What makes AMIE slow here — and the paper's Table 4 point — is structural:
the BFS explores refinements in no complexity order, computes support and
confidence through generic conjunctive queries, and has no RE-specific
pruning.  We keep all of that.  The single concession to pathological
inputs is a per-support-check cap on enumerated solutions
(``max_solutions_per_check``), which only kicks in far beyond the paper's
operating range and is reported in the stats when hit.

Language modes mirror Table 4's rows:

* ``"standard"`` — instantiated atoms on the root only (the
  state-of-the-art RE language);
* ``"full"`` — all three operators (AMIE's native language, which
  subsumes REMI's bias for ``l = 4``).
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

from repro.expressions.atoms import ROOT, Atom, Variable
from repro.expressions.matching import solve
from repro.ilp.rules import Rule, canonical_rule, is_closed
from repro.kb.store import KnowledgeBase
from repro.kb.terms import IRI, BlankNode, Term


@dataclass
class AmieResult:
    """Everything one mining run produced."""

    targets: Tuple[Term, ...]
    #: Closed rules with support |T| and confidence 1.0 — their bodies are
    #: referring expressions for the targets.
    referring_rules: List[Rule] = field(default_factory=list)
    rules_popped: int = 0
    refinements: int = 0
    support_checks: int = 0
    seconds: float = 0.0
    timed_out: bool = False
    solution_cap_hits: int = 0

    @property
    def found(self) -> bool:
        return bool(self.referring_rules)


class AmieMiner:
    """Breadth-first rule search with AMIE's refinement operators."""

    def __init__(
        self,
        kb: KnowledgeBase,
        max_length: int = 4,
        language: str = "full",
        timeout_seconds: Optional[float] = None,
        max_solutions_per_check: int = 2048,
    ):
        if language not in ("standard", "full"):
            raise ValueError(f"language must be 'standard' or 'full', got {language!r}")
        if max_length < 2:
            raise ValueError("max_length must allow at least one body atom")
        self.kb = kb
        self.max_length = max_length
        self.language = language
        self.timeout_seconds = timeout_seconds
        self.max_solutions_per_check = max_solutions_per_check

    # ------------------------------------------------------------------

    def mine(self, targets: Sequence[Term]) -> AmieResult:
        """All closed rules with support |T| and confidence 1.0."""
        target_set = frozenset(targets)
        if not target_set:
            raise ValueError("need at least one target entity")
        result = AmieResult(targets=tuple(targets))
        started = time.perf_counter()
        deadline = (
            started + self.timeout_seconds if self.timeout_seconds is not None else None
        )
        frontier: deque[Rule] = deque([Rule(())])
        seen: Set[Rule] = set(frontier)
        reported: Set[Rule] = set()

        while frontier:
            if deadline is not None and time.perf_counter() > deadline:
                result.timed_out = True
                break
            rule = frontier.popleft()
            result.rules_popped += 1
            if rule.length >= self.max_length:
                continue
            for refined in self._refinements(rule, target_set, result):
                if refined in seen:
                    continue
                seen.add(refined)
                result.refinements += 1
                support = self._support(refined, target_set, result)
                if support < len(target_set):
                    continue  # monotone pruning: no refinement can recover
                if is_closed(refined) and refined not in reported:
                    if self._confidence_is_one(refined, target_set):
                        reported.add(refined)
                        result.referring_rules.append(refined)
                frontier.append(refined)
        result.seconds = time.perf_counter() - started
        return result

    # ------------------------------------------------------------------
    # quality measures
    # ------------------------------------------------------------------

    def _support(self, rule: Rule, targets: FrozenSet[Term], result: AmieResult) -> int:
        """#targets whose root instantiation satisfies the body."""
        result.support_checks += 1
        count = 0
        for t in targets:
            if next(solve(list(rule.body), self.kb, {ROOT: t}), None) is not None:
                count += 1
        return count

    def _confidence_is_one(self, rule: Rule, targets: FrozenSet[Term]) -> bool:
        """True when the body's root bindings are exactly the target set.

        Faithful to AMIE's confidence computation: the denominator is the
        *full* count of the body's head-variable bindings, so the whole
        solution set is enumerated (no early exit on the first non-target
        binding).  This full enumeration is one of the reasons AMIE+ is
        slow in the RE-mining reduction (§4.2.2).
        """
        bindings = {a.get(ROOT) for a in solve(list(rule.body), self.kb)}
        bindings.discard(None)
        return bindings == set(targets)

    # ------------------------------------------------------------------
    # refinement operators
    # ------------------------------------------------------------------

    def _refinements(
        self, rule: Rule, targets: FrozenSet[Term], result: AmieResult
    ) -> Iterable[Rule]:
        """All one-atom extensions of *rule* admitted by the language."""
        if self.language == "standard":
            yield from self._instantiated_on_root(rule, targets, result)
            return
        shared_neighbourhood = self._shared_bindings(rule, targets, result)
        refined: Set[Rule] = set()
        variables = rule.variables()
        fresh = Variable(f"v{len(variables)}")
        for variable, bindings in shared_neighbourhood.items():
            forward_preds: Set[IRI] = set()
            backward_preds: Set[IRI] = set()
            forward_consts: Set[Tuple[IRI, Term]] = None  # type: ignore[assignment]
            backward_consts: Set[Tuple[IRI, Term]] = None  # type: ignore[assignment]
            for per_target in bindings:
                target_fwd_p: Set[IRI] = set()
                target_bwd_p: Set[IRI] = set()
                target_fwd_c: Set[Tuple[IRI, Term]] = set()
                target_bwd_c: Set[Tuple[IRI, Term]] = set()
                for value in per_target:
                    if isinstance(value, (IRI, BlankNode)):
                        for p, o in self.kb.predicate_object_pairs(value):
                            target_fwd_p.add(p)
                            target_fwd_c.add((p, o))
                    for p in self.kb.predicates_into(value):
                        target_bwd_p.add(p)
                        for s in self.kb.subjects(p, value):
                            target_bwd_c.add((p, s))
                # AMIE's counting projections generate a candidate for every
                # constant observed with ANY head binding (the union); each
                # candidate then pays its own support/confidence queries.
                # That per-candidate query cost — not candidate generation —
                # is what §4.2.2 blames for AMIE's behaviour with constants.
                forward_preds |= target_fwd_p
                backward_preds |= target_bwd_p
                forward_consts = (
                    target_fwd_c if forward_consts is None else forward_consts | target_fwd_c
                )
                backward_consts = (
                    target_bwd_c if backward_consts is None else backward_consts | target_bwd_c
                )
            # dangling atoms: p(v, w) and p(w, v)
            for p in forward_preds:
                refined.add(rule.extend(Atom(p, variable, fresh)))
            for p in backward_preds:
                refined.add(rule.extend(Atom(p, fresh, variable)))
            # instantiated atoms: p(v, c) and p(c, v), constants shared by
            # every target (counting-projection selection)
            for p, o in forward_consts or ():
                refined.add(rule.extend(Atom(p, variable, o)))
            for p, s in backward_consts or ():
                refined.add(rule.extend(Atom(p, s, variable)))
        # closing atoms: p(v1, v2) over existing variable pairs
        for i, v1 in enumerate(variables):
            for v2 in variables[i + 1 :]:
                for p in self.kb.predicates():
                    refined.add(rule.extend(Atom(p, v1, v2)))
                    refined.add(rule.extend(Atom(p, v2, v1)))
        yield from refined

    def _instantiated_on_root(
        self, rule: Rule, targets: FrozenSet[Term], result: AmieResult
    ) -> Iterable[Rule]:
        """Standard-language operator: add ``p(x, c)`` only.

        Candidates come from the union over targets (AMIE's projection
        queries); unsupported ones are discarded by the caller's support
        check, at the cost of one query each.
        """
        union: Set[Tuple[IRI, Term]] = set()
        for t in targets:
            union |= set(self.kb.predicate_object_pairs(t))
        for p, o in union:
            yield rule.extend(Atom(p, ROOT, o))

    def _shared_bindings(
        self, rule: Rule, targets: FrozenSet[Term], result: AmieResult
    ) -> Dict[Variable, List[Set[Term]]]:
        """Per variable, the list (one entry per target) of its bindings.

        Enumeration is capped at ``max_solutions_per_check`` assignments
        per target; the cap counter in the result records any truncation.
        """
        variables = rule.variables()
        out: Dict[Variable, List[Set[Term]]] = {v: [] for v in variables}
        for t in targets:
            per_var: Dict[Variable, Set[Term]] = {v: set() for v in variables}
            per_var[ROOT].add(t)
            count = 0
            for assignment in solve(list(rule.body), self.kb, {ROOT: t}):
                for variable, value in assignment.items():
                    per_var.setdefault(variable, set()).add(value)
                count += 1
                if count >= self.max_solutions_per_check:
                    result.solution_cap_hits += 1
                    break
            for variable in variables:
                out[variable].append(per_var[variable])
        return out
