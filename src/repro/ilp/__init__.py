"""The inductive-logic-programming opponent (paper §4.2.1).

The paper compares REMI against AMIE+, a state-of-the-art Horn-rule miner,
by reducing RE mining to rule mining: add surrogate facts ``ψ(t, True)``
for every target ``t`` and mine rules ``ψ(x, True) ⇐ body`` with support
``|T|`` and confidence 1.0 — the body is then a referring expression.

* :mod:`repro.ilp.rules` — Horn rules, canonicalization, closedness;
* :mod:`repro.ilp.amie` — the breadth-first AMIE-style miner with the
  dangling / instantiated / closing refinement operators.
"""

from repro.ilp.amie import AmieMiner, AmieResult
from repro.ilp.rules import Rule, canonical_rule, is_closed

__all__ = ["AmieMiner", "AmieResult", "Rule", "canonical_rule", "is_closed"]
