"""Horn rules for the AMIE-style miner.

A :class:`Rule` is ``head ⇐ body`` where the head is the surrogate atom
``ψ(x, True)`` of §4.2.1 and the body is a conjunction of atoms.  Rules
are *canonicalized* so that the BFS can deduplicate: body atoms are
sorted and variables renamed to ``x, v1, v2, …`` in first-appearance
order (the root variable is never renamed).
"""

from __future__ import annotations

from typing import Dict, Iterator, Tuple

from repro.expressions.atoms import ROOT, Atom, Variable
from repro.kb.terms import IRI, Literal

#: The surrogate head predicate ψ of §4.2.1.
SURROGATE = IRI("urn:repro:ilp:target")
#: The constant True used in surrogate facts ψ(t, True).
TRUE = Literal("true")

HEAD = Atom(SURROGATE, ROOT, TRUE)


class Rule:
    """An immutable Horn rule with the surrogate head."""

    __slots__ = ("body", "_hash")

    def __init__(self, body: Tuple[Atom, ...]):
        object.__setattr__(self, "body", body)
        object.__setattr__(self, "_hash", hash((Rule, body)))

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("Rule instances are immutable")

    @property
    def head(self) -> Atom:
        return HEAD

    @property
    def length(self) -> int:
        """Total number of atoms, head included (AMIE's l parameter)."""
        return 1 + len(self.body)

    def variables(self) -> Tuple[Variable, ...]:
        """All distinct variables, in first-appearance order (root first)."""
        seen: Dict[Variable, None] = {ROOT: None}
        for atom in self.body:
            for variable in atom.variables():
                seen.setdefault(variable, None)
        return tuple(seen)

    def extend(self, atom: Atom) -> "Rule":
        return canonical_rule(self.body + (atom,))

    def __iter__(self) -> Iterator[Atom]:
        return iter(self.body)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Rule) and self.body == other.body

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        body = " ∧ ".join(repr(a) for a in self.body) if self.body else "⊤"
        return f"ψ(?x, true) ⇐ {body}"


def canonical_rule(body: Tuple[Atom, ...]) -> Rule:
    """Canonicalize: sort atoms, rename non-root variables by appearance.

    Two rules that differ only in variable names or atom order map to the
    same canonical rule, which keeps the BFS frontier duplicate-free.
    """
    ordered = tuple(sorted(set(body), key=Atom.sort_key))
    mapping: Dict[Variable, Variable] = {ROOT: ROOT}
    counter = 0
    renamed = []
    for atom in ordered:
        for variable in atom.variables():
            if variable not in mapping:
                counter += 1
                mapping[variable] = Variable(f"v{counter}")
        renamed.append(atom.rename(mapping))
    # Renaming can change sort order; sort once more for a fixed point.
    return Rule(tuple(sorted(renamed, key=Atom.sort_key)))


def is_closed(rule: Rule) -> bool:
    """AMIE's closedness: every variable appears in at least two atoms.

    The head ``ψ(x, True)`` counts as one appearance of the root.
    """
    counts: Dict[Variable, int] = {ROOT: 1}  # head appearance
    for atom in rule.body:
        for variable in atom.variables():
            counts[variable] = counts.get(variable, 0) + 1
    return all(count >= 2 for count in counts.values())


def is_connected(rule: Rule) -> bool:
    """True when the body atoms form one connected component through
    shared variables that includes the root (or the body is empty)."""
    if not rule.body:
        return True
    reached = {ROOT}
    pending = list(rule.body)
    progress = True
    while progress and pending:
        progress = False
        remaining = []
        for atom in pending:
            atom_vars = set(atom.variables())
            if not atom_vars:
                continue  # fully instantiated atoms attach nowhere
            if atom_vars & reached:
                reached |= atom_vars
                progress = True
            else:
                remaining.append(atom)
        pending = remaining
    return not pending
