"""SPARQL rendering of referring expressions.

The paper motivates RE mining for "query generation in KBs" (§1, §6): a
mined RE is precisely a SPARQL basic graph pattern whose solution set is
the target entities.  :func:`to_sparql` performs that translation:

* each conjunct's existential ``y`` is renamed apart (``?y0``, ``?y1`` …)
  — conjuncts share only the root variable (§2.2.2);
* inverse predicates ``p⁻¹(x, o)`` render as the natural ``?o p ?x``
  triple pattern instead of leaking the synthetic inverse IRI.

>>> to_sparql(expression)
'SELECT DISTINCT ?x WHERE { ?x <.../cityIn> <.../France> . ... }'
"""

from __future__ import annotations

from typing import List

from repro.expressions.atoms import ROOT, Variable
from repro.expressions.expression import Expression
from repro.expressions.subgraph import SubgraphExpression
from repro.kb.inverse import inverse_predicate, is_inverse
from repro.kb.terms import IRI, Literal, Term


def _term_sparql(term) -> str:
    if isinstance(term, Variable):
        return f"?{term.name}"
    if isinstance(term, (IRI, Literal)):
        return term.n3()
    # blank nodes in query position act as fresh variables
    return f"_:{term.label}"


def _atom_pattern(predicate: IRI, subject, obj) -> str:
    """One triple pattern, un-inverting synthetic inverse predicates."""
    if is_inverse(predicate):
        return (
            f"{_term_sparql(obj)} {inverse_predicate(predicate).n3()} "
            f"{_term_sparql(subject)} ."
        )
    return f"{_term_sparql(subject)} {predicate.n3()} {_term_sparql(obj)} ."


def subgraph_patterns(se: SubgraphExpression, suffix: str) -> List[str]:
    """The triple patterns of one conjunct, with its ``y`` renamed apart."""
    fresh = Variable(f"y{suffix}")
    patterns = []
    for atom in se.atoms:
        subject = fresh if isinstance(atom.subject, Variable) and atom.subject != ROOT else atom.subject
        obj = fresh if isinstance(atom.object, Variable) and atom.object != ROOT else atom.object
        patterns.append(_atom_pattern(atom.predicate, subject, obj))
    return patterns


def to_sparql(expression: Expression, indent: str = "  ") -> str:
    """Render *expression* as a SELECT query over its root variable."""
    if expression.is_top:
        raise ValueError("⊤ has no SPARQL rendering (it matches everything)")
    patterns: List[str] = []
    for index, se in enumerate(expression.conjuncts):
        patterns.extend(subgraph_patterns(se, str(index)))
    body = "\n".join(indent + line for line in patterns)
    return f"SELECT DISTINCT ?x WHERE {{\n{body}\n}}"


def to_ask_sparql(expression: Expression, entity: Term, indent: str = "  ") -> str:
    """An ASK query checking that *entity* satisfies *expression* —
    useful for KB-maintenance monitors ("is this description still
    unambiguous?")."""
    select = to_sparql(expression, indent=indent)
    body = select.split("WHERE", 1)[1]
    bound = body.replace("?x", entity.n3())
    return "ASK WHERE" + bound
