"""REMI's expression language (paper §2.2 and §3.2, Table 1).

* :mod:`repro.expressions.atoms` — variables and atoms ``p(X, Y)``;
* :mod:`repro.expressions.subgraph` — the five subgraph-expression shapes
  of Table 1, rooted at the root variable ``x``;
* :mod:`repro.expressions.expression` — conjunctions of subgraph
  expressions sharing only the root variable (referring expressions);
* :mod:`repro.expressions.matching` — evaluation against a
  :class:`repro.kb.KnowledgeBase` (bindings, RE check), with shape-specific
  fast paths and a generic conjunctive-query evaluator;
* :mod:`repro.expressions.verbalize` — natural-language rendering via
  ``rdfs:label`` (§4.1.1).
"""

from repro.expressions.atoms import ROOT, Atom, Variable, Y, Z
from repro.expressions.expression import Expression
from repro.expressions.matching import Matcher
from repro.expressions.subgraph import Shape, SubgraphExpression
from repro.expressions.verbalize import Verbalizer

__all__ = [
    "Atom",
    "Expression",
    "Matcher",
    "ROOT",
    "Shape",
    "SubgraphExpression",
    "Variable",
    "Verbalizer",
    "Y",
    "Z",
]
