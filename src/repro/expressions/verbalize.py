"""Natural-language verbalization of expressions.

§4.1.1: "We manually translated the subgraph expressions to natural
language statements in the shortest possible way by using the textual
descriptions (predicate ``rdfs:label``) of the concepts when available."

The :class:`Verbalizer` automates that recipe: every concept is rendered by
its ``rdfs:label`` when present, falling back to a prettified IRI local
name.  Inverse predicates render with an "is … of" frame, paths with a
possessive chain, closed shapes with a shared-object frame ("she was born,
lived and died in the same place").
"""

from __future__ import annotations

import re
from typing import Optional

from repro.expressions.expression import Expression
from repro.expressions.subgraph import Shape, SubgraphExpression
from repro.kb.inverse import inverse_predicate, is_inverse
from repro.kb.namespaces import RDFS_LABEL
from repro.kb.store import KnowledgeBase
from repro.kb.terms import IRI, Literal, Term

_CAMEL = re.compile(r"(?<=[a-z0-9])(?=[A-Z])")


def _of_frame(phrase: str, obj: str) -> str:
    """'capital of' + 'France' → 'capital of France' (no doubled 'of')."""
    if phrase.endswith(" of"):
        return f"{phrase} {obj}"
    return f"{phrase} of {obj}"


def prettify_local_name(name: str) -> str:
    """``officialLanguage`` → ``official language``; ``birth_place`` → ``birth place``."""
    name = name.replace("_", " ").replace("-", " ")
    return _CAMEL.sub(" ", name).lower().strip()


class Verbalizer:
    """Renders expressions as short English descriptions of ``x``."""

    def __init__(self, kb: KnowledgeBase, label_predicate: IRI = RDFS_LABEL):
        self.kb = kb
        self.label_predicate = label_predicate

    # ------------------------------------------------------------------

    def label(self, term: Term) -> str:
        """The display string of a term: rdfs:label first, local name second."""
        if isinstance(term, Literal):
            return f'"{term.lexical}"'
        if isinstance(term, IRI):
            for obj in self.kb.objects(term, self.label_predicate):
                if isinstance(obj, Literal):
                    return obj.lexical
            return prettify_local_name(term.local_name)
        return str(term)

    def predicate_phrase(self, predicate: IRI) -> tuple[str, bool]:
        """(phrase, inverted) — the readable predicate name and direction."""
        if is_inverse(predicate):
            return prettify_local_name(inverse_predicate(predicate).local_name), True
        return prettify_local_name(predicate.local_name), False

    # ------------------------------------------------------------------

    def subgraph(self, se: SubgraphExpression) -> str:
        """Verbalize one subgraph expression as a clause about ``x``."""
        if se.shape is Shape.SINGLE_ATOM:
            atom = se.atoms[0]
            phrase, inverted = self.predicate_phrase(atom.predicate)
            obj = self.label(atom.object)
            if inverted:
                return f"x is the {_of_frame(phrase, obj)}"
            return f"x's {phrase} is {obj}"
        if se.shape is Shape.PATH:
            hop, tail = se.atoms
            hop_phrase, hop_inv = self.predicate_phrase(hop.predicate)
            tail_phrase, tail_inv = self.predicate_phrase(tail.predicate)
            obj = self.label(tail.object)
            head = f"something x is the {hop_phrase} of".replace(" of of", " of") if hop_inv else f"x's {hop_phrase}"
            if tail_inv:
                return f"{head} is the {_of_frame(tail_phrase, obj)}"
            return f"{head} has {tail_phrase} {obj}"
        if se.shape is Shape.PATH_STAR:
            hop, star1, star2 = se.atoms
            hop_phrase, hop_inv = self.predicate_phrase(hop.predicate)
            head = f"something x is the {hop_phrase} of".replace(" of of", " of") if hop_inv else f"x's {hop_phrase}"
            parts = []
            for star in (star1, star2):
                phrase, inv = self.predicate_phrase(star.predicate)
                obj = self.label(star.object)
                if inv:
                    parts.append(f"is the {_of_frame(phrase, obj)}")
                else:
                    parts.append(f"has {phrase} {obj}")
            return f"{head} {' and '.join(parts)}"
        # closed shapes: shared object across predicates
        phrases = []
        for atom in se.atoms:
            phrase, inv = self.predicate_phrase(atom.predicate)
            phrases.append(f"{phrase} of" if inv else phrase)
        joined = ", ".join(phrases[:-1]) + f" and {phrases[-1]}"
        return f"x's {joined} are the same"

    def expression(self, expression: Expression) -> str:
        """Verbalize a full referring expression."""
        if expression.is_top:
            return "anything (⊤)"
        clauses = [self.subgraph(se) for se in expression.conjuncts]
        return "; and ".join(clauses)

    def describe(self, expression: Expression, subject_label: Optional[str] = None) -> str:
        """A sentence: 'Paris: x is the capital of France.'"""
        body = self.expression(expression)
        if subject_label:
            return f"{subject_label}: {body}."
        return f"{body}."
