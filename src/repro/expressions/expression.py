"""Referring expressions: conjunctions of subgraph expressions.

An :class:`Expression` ``e = ρ1 ∧ … ∧ ρm`` (§2.2.2) conjoins subgraph
expressions that share *only* the root variable ``x``.  The existential
``y`` variables of different conjuncts are independent — they are renamed
apart at evaluation time by the matcher.

``Expression.TOP`` is the empty conjunction ``⊤`` with ``Ĉ(⊤) = ∞``
(footnote 6), used as the initial "no solution yet" value in Algorithms
1–3.
"""

from __future__ import annotations

from typing import Iterator, Optional, Tuple

from repro.expressions.subgraph import SubgraphExpression


class Expression:
    """An immutable conjunction of subgraph expressions rooted at ``x``."""

    __slots__ = ("conjuncts", "_hash")

    TOP: "Expression"

    def __init__(self, conjuncts: Tuple[SubgraphExpression, ...] = ()):
        deduped = tuple(dict.fromkeys(conjuncts))  # preserve order, drop dupes
        object.__setattr__(self, "conjuncts", deduped)
        object.__setattr__(self, "_hash", hash((Expression, frozenset(deduped))))

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("Expression instances are immutable")

    @classmethod
    def of(cls, *conjuncts: SubgraphExpression) -> "Expression":
        return cls(tuple(conjuncts))

    # ------------------------------------------------------------------

    @property
    def is_top(self) -> bool:
        """True for the empty expression ⊤ (matches everything, Ĉ = ∞)."""
        return not self.conjuncts

    @property
    def size(self) -> int:
        """Total number of atoms across all conjuncts."""
        return sum(se.size for se in self.conjuncts)

    def extend(self, conjunct: SubgraphExpression) -> "Expression":
        """A new expression with *conjunct* appended."""
        return Expression(self.conjuncts + (conjunct,))

    def prefix(self, length: int) -> "Expression":
        """The first *length* conjuncts (search-tree ancestor)."""
        return Expression(self.conjuncts[:length])

    def is_prefixed_with(self, other: "Expression") -> bool:
        """True when this expression starts with *other*'s conjuncts."""
        return self.conjuncts[: len(other.conjuncts)] == other.conjuncts

    def atoms(self):
        """All atoms across conjuncts (with their per-conjunct ``y``'s shared —
        callers that evaluate must rename them apart; the matcher does)."""
        for se in self.conjuncts:
            yield from se.atoms

    def __iter__(self) -> Iterator[SubgraphExpression]:
        return iter(self.conjuncts)

    def __len__(self) -> int:
        return len(self.conjuncts)

    def __eq__(self, other: object) -> bool:
        # Conjunction is commutative: compare as sets.
        return isinstance(other, Expression) and frozenset(self.conjuncts) == frozenset(
            other.conjuncts
        )

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        if self.is_top:
            return "⊤"
        return " ∧ ".join(f"[{se!r}]" for se in self.conjuncts)


Expression.TOP = Expression(())
