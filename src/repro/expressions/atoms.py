"""Variables and atoms.

An atom ``p(X, Y)`` (§2.2.1) has a predicate ``p`` and two arguments that
are each either a :class:`Variable` or a constant :class:`~repro.kb.Term`.
Atoms whose root argument would sit in object position are normalized by
the enumerator to subject position using inverse predicates (footnote 4 of
the paper), so within this codebase atom *subjects* are always variables.
"""

from __future__ import annotations

from typing import Iterator, Tuple, Union

from repro.kb.terms import IRI, Term


class Variable:
    """A named, interned logical variable.

    ``Variable("x")`` is the root variable in every expression; ``y`` and
    ``z`` are the existentially quantified helpers of §3.2.
    """

    __slots__ = ("name",)

    _intern: dict[str, "Variable"] = {}

    def __new__(cls, name: str) -> "Variable":
        cached = cls._intern.get(name)
        if cached is not None:
            return cached
        self = super().__new__(cls)
        object.__setattr__(self, "name", name)
        cls._intern[name] = self
        return self

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("Variable instances are immutable")

    def __repr__(self) -> str:
        return f"?{self.name}"

    def __eq__(self, other: object) -> bool:
        return self is other or (isinstance(other, Variable) and self.name == other.name)

    def __hash__(self) -> int:
        return hash((Variable, self.name))

    def __lt__(self, other: "Variable") -> bool:
        return self.name < other.name


#: The root variable of all referring expressions.
ROOT = Variable("x")
#: The (at most one) existentially quantified variable of REMI's bias.
Y = Variable("y")
#: A second helper variable, used only by the §3.2 language census (E7).
Z = Variable("z")

Argument = Union[Variable, Term]


class Atom:
    """An atom ``predicate(subject, object)`` with variable or constant arguments."""

    __slots__ = ("predicate", "subject", "object", "_hash")

    def __init__(self, predicate: IRI, subject: Argument, obj: Argument):
        if not isinstance(predicate, IRI):
            raise TypeError(f"atom predicate must be an IRI, got {predicate!r}")
        if not isinstance(subject, (Variable, Term)):
            raise TypeError(f"atom subject must be a variable or term, got {subject!r}")
        if not isinstance(obj, (Variable, Term)):
            raise TypeError(f"atom object must be a variable or term, got {obj!r}")
        object.__setattr__(self, "predicate", predicate)
        object.__setattr__(self, "subject", subject)
        object.__setattr__(self, "object", obj)
        object.__setattr__(self, "_hash", hash((Atom, predicate, subject, obj)))

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("Atom instances are immutable")

    # ------------------------------------------------------------------

    def variables(self) -> Tuple[Variable, ...]:
        """The variables of the atom, subject first."""
        out = []
        if isinstance(self.subject, Variable):
            out.append(self.subject)
        if isinstance(self.object, Variable):
            out.append(self.object)
        return tuple(out)

    def constants(self) -> Tuple[Term, ...]:
        """The constant arguments of the atom."""
        out = []
        if not isinstance(self.subject, Variable):
            out.append(self.subject)
        if not isinstance(self.object, Variable):
            out.append(self.object)
        return tuple(out)

    def is_ground(self) -> bool:
        return not self.variables()

    def mentions(self, variable: Variable) -> bool:
        return self.subject == variable or self.object == variable

    def substitute(self, assignment: dict) -> "Atom":
        """Apply a variable-to-term assignment (the paper's μ_σ operator)."""
        subject = assignment.get(self.subject, self.subject)
        obj = assignment.get(self.object, self.object)
        return Atom(self.predicate, subject, obj)

    def rename(self, mapping: "dict[Variable, Variable]") -> "Atom":
        """Rename variables according to *mapping* (used by the ILP miner)."""
        subject = mapping.get(self.subject, self.subject) if isinstance(self.subject, Variable) else self.subject
        obj = mapping.get(self.object, self.object) if isinstance(self.object, Variable) else self.object
        return Atom(self.predicate, subject, obj)

    def sort_key(self) -> tuple:
        """Deterministic ordering key, used to canonicalize conjunctions."""
        return (
            self.predicate.value,
            _arg_key(self.subject),
            _arg_key(self.object),
        )

    # ------------------------------------------------------------------

    def __iter__(self) -> Iterator[Argument]:
        yield self.subject
        yield self.object

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Atom)
            and self.predicate == other.predicate
            and self.subject == other.subject
            and self.object == other.object
        )

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        return f"{self.predicate.local_name}({_arg_str(self.subject)}, {_arg_str(self.object)})"


def _arg_key(arg: Argument) -> tuple:
    if isinstance(arg, Variable):
        return (0, arg.name)
    return (1 + arg._sort_kind,) + arg.sort_key()


def _arg_str(arg: Argument) -> str:
    if isinstance(arg, Variable):
        return f"?{arg.name}"
    if isinstance(arg, IRI):
        return arg.local_name
    return str(arg)
