"""Expression evaluation against a knowledge base.

The :class:`Matcher` answers the two questions REMI's search loop asks
(Alg. 1 line 1 and Alg. 2 line 5):

* what are the bindings of the root variable ``x`` for a (subgraph)
  expression — :meth:`Matcher.bindings` /
  :meth:`Matcher.expression_bindings`;
* is an expression a referring expression for a target set ``T`` —
  :meth:`Matcher.identifies` (bindings == T, §2.2.2).

Each Table 1 shape gets a dedicated evaluation plan built from the
backend's atom-binding API; results are memoized in an LRU cache keyed on
the canonical expression (§3.5.2).  On a dictionary-encoded backend
(``supports_id_queries``, e.g. :class:`~repro.kb.interned.InternedKnowledgeBase`)
the plans run entirely in integer-ID space — atom constants are encoded
once per evaluation, set algebra happens over ``set[int]``, and results are
decoded to terms only at the public API boundary (:meth:`Matcher.bindings`,
:meth:`Matcher.expression_bindings`).  A generic backtracking
conjunctive-query solver (:func:`solve`) handles arbitrary atom lists — it
is what the AMIE+ opponent uses, and doubles as a differential-testing
oracle for the fast paths.
"""

from __future__ import annotations

from typing import (
    Any,
    Dict,
    FrozenSet,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

# Bit-level primitives (lowest-set-bit iteration, mask building) live in
# the shared kernel: see :mod:`repro.kb.idset`.

from repro.expressions.atoms import Atom, Variable
from repro.expressions.expression import Expression
from repro.expressions.subgraph import Shape, SubgraphExpression
from repro.kb.base import BaseKnowledgeBase
from repro.kb.cache import MISSING, LRUCache
from repro.kb.epoch import CacheCoherence, EpochWatcher
from repro.kb.terms import Term

Assignment = Dict[Variable, Term]

_EMPTY: frozenset = frozenset()


def _identity(term: Term) -> Term:
    return term


class Matcher:
    """Evaluates subgraph expressions and referring expressions on a KB.

    Internally the matcher works in the backend's *raw* binding
    representation and decodes to terms only when a public method returns
    bindings:

    * **hash backend** — raw bindings are (frozen)sets of term objects;
    * **interned backend** — raw bindings are *bitmasks*: big ints with
      bit *i* set when dense term ID *i* binds.  Dense IDs make binding
      sets compact, and intersection / union / subset / equality over a
      whole candidate set collapse into single C-speed big-int operations
      (the compact-ID-set technique of HDT and the decision-diagram
      literature).

    The LRU cache, all set algebra, and the RE test operate on the raw
    representation.

    The cache is epoch-coherent: it records the KB epoch its entries were
    computed at and clears itself when the KB mutates (no manual
    ``clear``/rebuild needed — see :mod:`repro.kb.epoch`).
    """

    def __init__(self, kb: BaseKnowledgeBase, cache_size: int = 65536):
        self.kb = kb
        #: Cached root bindings per subgraph expression, in RAW form
        #: (frozenset of terms, or a bitmask int on an interned backend).
        self._cache: LRUCache[SubgraphExpression, Any] = LRUCache(cache_size)
        self.evaluations = 0  # SE evaluations that actually hit the KB
        self._targets_memo: Optional[Tuple[Any, Any]] = None
        #: Epoch guard: cached bindings are valid only for the KB state
        #: they were computed against; any mutation drops them lazily.
        self._watch = EpochWatcher(kb)
        self._mask_space = bool(getattr(kb, "supports_id_queries", False))
        if self._mask_space:
            self._encode = kb.term_id  # type: ignore[attr-defined]
            self._decode = kb.decode_mask  # type: ignore[attr-defined]
            self._subjects_mask = kb.subjects_mask  # type: ignore[attr-defined]
            self._subjects_ids = kb.subjects_ids_view  # type: ignore[attr-defined]
            self._objects = kb.objects_ids_view  # type: ignore[attr-defined]
            self._subject_count = kb.subject_count_ids  # type: ignore[attr-defined]
            self._subject_object_items_ids = kb.subject_object_items_ids  # type: ignore[attr-defined]
            self._empty: Any = 0
        else:
            self._encode = _identity
            self._decode = frozenset
            self._objects = kb.objects_view
            self._subject_count = kb.subject_count
            self._subject_object_items = kb.subject_object_items
            self._empty = _EMPTY

    def _sync(self) -> None:
        """Drop cached bindings built at an older KB epoch (coarse: a
        single triple can change any expression's binding set, so there
        is no per-key repair worth doing here).  One int compare when the
        KB has not moved."""
        watch = self._watch
        if watch.seen != self.kb.epoch:
            watch.absorb(None, self._drop_cached_bindings)

    def _drop_cached_bindings(self) -> None:
        self._cache.clear()
        self._targets_memo = None

    @property
    def coherence(self) -> CacheCoherence:
        """Epoch-invalidation telemetry for this matcher's cache."""
        return self._watch.coherence

    # ------------------------------------------------------------------
    # subgraph expressions
    # ------------------------------------------------------------------

    def bindings(self, se: SubgraphExpression) -> FrozenSet[Term]:
        """All bindings of the root variable for *se* (cached, decoded)."""
        self._sync()
        return self._decode(self._raw_bindings(se))

    def _raw_bindings(self, se: SubgraphExpression) -> Any:
        """Root bindings in raw form (the cached representation)."""
        return self._cache.get_or_compute(se, lambda: self._evaluate(se))

    def _evaluate(self, se: SubgraphExpression) -> Any:
        self.evaluations += 1
        if self._mask_space:
            return self._evaluate_masks(se)
        return self._evaluate_sets(se)

    # -- term-set evaluation plans (hash backend) ----------------------

    def _evaluate_sets(self, se: SubgraphExpression) -> FrozenSet[Term]:
        kb = self.kb
        atoms = se.atoms
        if se.shape is Shape.SINGLE_ATOM:
            atom = atoms[0]
            return frozenset(kb.subjects_view(atom.predicate, atom.object))  # type: ignore[arg-type]
        if se.shape is Shape.PATH:
            hop, tail = atoms
            mids: Set[Term] = kb.subjects_view(tail.predicate, tail.object)  # type: ignore[arg-type]
            return self._roots_via_sets(hop.predicate, mids)
        if se.shape is Shape.PATH_STAR:
            hop, star1, star2 = atoms
            mids = kb.subjects_view(star1.predicate, star1.object)  # type: ignore[arg-type]
            if mids:
                mids = mids & kb.subjects_view(star2.predicate, star2.object)  # type: ignore[arg-type]
            return self._roots_via_sets(hop.predicate, mids)
        if se.shape in (Shape.CLOSED_2, Shape.CLOSED_3):
            return self._closed_roots_sets(se)
        raise AssertionError(f"unhandled shape {se.shape}")

    def _roots_via_sets(self, predicate, mids: Iterable[Term]) -> FrozenSet[Term]:
        subjects = self.kb.subjects_view
        roots: Set[Term] = set()
        for mid in mids:
            roots |= subjects(predicate, mid)
        return frozenset(roots)

    def _closed_roots_sets(self, se: SubgraphExpression) -> FrozenSet[Term]:
        predicates = se.predicates()
        # Drive the scan from the predicate with the fewest subjects.
        driver = min(predicates, key=self._subject_count)
        rest = [p for p in predicates if p != driver]
        objects = self._objects
        roots: Set[Term] = set()
        for subject, driver_objects in self._subject_object_items(driver):
            shared = driver_objects
            for p in rest:
                shared = shared & objects(subject, p)
                if not shared:
                    break
            if shared:
                roots.add(subject)
        return frozenset(roots)

    # -- bitmask evaluation plans (interned backend) -------------------
    #
    # Plans walk the cheap id-set adjacency views and accumulate the root
    # set in a bytearray, finalized to one bitmask int (O(n + width/8)).
    # Only the *cached* masks do big-int algebra — that is where the RE
    # test's subset/intersection/equality checks become single C-speed
    # operations.

    def _evaluate_masks(self, se: SubgraphExpression) -> int:
        encode = self._encode
        atoms = se.atoms
        if se.shape is Shape.SINGLE_ATOM:
            atom = atoms[0]
            p = encode(atom.predicate)
            o = encode(atom.object)  # type: ignore[arg-type]
            if p is None or o is None:
                return 0
            return self._subjects_mask(p, o)
        if se.shape is Shape.PATH:
            hop, tail = atoms
            return self._roots_via_mask(hop.predicate, self._atom_ids(tail))
        if se.shape is Shape.PATH_STAR:
            hop, star1, star2 = atoms
            mids = self._atom_ids(star1)
            if mids:
                mids = mids & self._atom_ids(star2)
            return self._roots_via_mask(hop.predicate, mids)
        if se.shape in (Shape.CLOSED_2, Shape.CLOSED_3):
            predicates = [encode(p) for p in se.predicates()]
            if any(p is None for p in predicates):
                return 0
            driver = min(predicates, key=self._subject_count)
            rest = [p for p in predicates if p != driver]
            objects_ids = self._objects
            buf = bytearray(self._mask_bytes())
            for subject, driver_objects in self._subject_object_items_ids(driver):
                shared = driver_objects
                for p in rest:
                    shared = shared & objects_ids(subject, p)
                    if not shared:
                        break
                if shared:
                    buf[subject >> 3] |= 1 << (subject & 7)
            return int.from_bytes(buf, "little")
        raise AssertionError(f"unhandled shape {se.shape}")

    def _mask_bytes(self) -> int:
        return (self.kb.term_count() >> 3) + 1  # type: ignore[attr-defined]

    def _atom_ids(self, atom: Atom) -> Set[int]:
        """Raw subject IDs of a bound atom ``p(x, I)`` (read-only view)."""
        p = self._encode(atom.predicate)
        o = self._encode(atom.object)  # type: ignore[arg-type]
        if p is None or o is None:
            return _EMPTY  # type: ignore[return-value]
        return self._subjects_ids(p, o)

    def _roots_via_mask(self, predicate, mids: Iterable[int]) -> int:
        p = self._encode(predicate)
        if p is None or not mids:
            return 0
        subjects_ids = self._subjects_ids
        buf = bytearray(self._mask_bytes())
        for mid in mids:
            for s in subjects_ids(p, mid):
                buf[s >> 3] |= 1 << (s & 7)
        return int.from_bytes(buf, "little")

    def holds_for(self, se: SubgraphExpression, entity: Term) -> bool:
        """Does *entity* satisfy *se*?  Cheaper than computing all bindings."""
        self._sync()
        x = self._encode(entity)
        if x is None:
            return False
        cached = self._cache.get(se, MISSING)
        if cached is not MISSING:
            if self._mask_space:
                return bool(cached >> x & 1)
            return x in cached
        encode = self._encode
        objects = self._objects
        atoms = se.atoms
        if se.shape is Shape.SINGLE_ATOM:
            atom = atoms[0]
            p = encode(atom.predicate)
            o = encode(atom.object)  # type: ignore[arg-type]
            return p is not None and o is not None and o in objects(x, p)
        if se.shape is Shape.PATH:
            hop, tail = atoms
            hp, tp = encode(hop.predicate), encode(tail.predicate)
            to = encode(tail.object)  # type: ignore[arg-type]
            if hp is None or tp is None or to is None:
                return False
            return any(to in objects(mid, tp) for mid in objects(x, hp))
        if se.shape is Shape.PATH_STAR:
            hop, star1, star2 = atoms
            hp = encode(hop.predicate)
            p1, o1 = encode(star1.predicate), encode(star1.object)  # type: ignore[arg-type]
            p2, o2 = encode(star2.predicate), encode(star2.object)  # type: ignore[arg-type]
            if None in (hp, p1, o1, p2, o2):
                return False
            return any(
                o1 in objects(mid, p1) and o2 in objects(mid, p2)
                for mid in objects(x, hp)
            )
        if se.shape in (Shape.CLOSED_2, Shape.CLOSED_3):
            predicates = [encode(p) for p in se.predicates()]
            if any(p is None for p in predicates):
                return False
            shared: Set[Any] = objects(x, predicates[0])
            for p in predicates[1:]:
                shared = shared & objects(x, p)
                if not shared:
                    return False
            return bool(shared)
        raise AssertionError(f"unhandled shape {se.shape}")

    # ------------------------------------------------------------------
    # referring expressions
    # ------------------------------------------------------------------

    def expression_bindings(self, expression: Expression) -> FrozenSet[Term]:
        """Root bindings of a conjunction — the intersection over conjuncts.

        Conjuncts share only ``x`` (§2.2.2), so their ``y``'s are
        independent and intersection of per-conjunct root bindings is the
        exact semantics, no cross-conjunct join required.
        """
        self._sync()
        return self._decode(self._raw_expression_bindings(expression))

    def _raw_expression_bindings(self, expression: Expression) -> Any:
        if expression.is_top:
            raise ValueError("⊤ has unbounded bindings; test conjuncts instead")
        result: Optional[Any] = None
        # Evaluate cached conjuncts first, then by ascending cost estimate.
        for se in sorted(expression.conjuncts, key=lambda s: (s not in self._cache, s.size)):
            found = self._raw_bindings(se)
            result = found if result is None else (result & found)
            if not result:
                return self._empty
        assert result is not None
        return result

    def _encode_targets(self, targets: FrozenSet[Term]) -> Optional[Any]:
        """*targets* in raw form; None when a target is not in the KB."""
        if not self._mask_space:
            return targets if isinstance(targets, frozenset) else frozenset(targets)
        memo = self._targets_memo
        if memo is not None and memo[0] is targets:
            return memo[1]
        encode = self._encode
        mask = 0
        for t in targets:
            r = encode(t)
            if r is None:
                return None  # never interned => bound by no expression
            mask |= 1 << r
        self._targets_memo = (targets, mask)
        return mask

    def identifies(self, expression: Expression, targets: FrozenSet[Term]) -> bool:
        """The RE test of §2.2.2: bindings(expression) == targets exactly.

        Short-circuits as soon as one target misses one conjunct: cached
        conjuncts via a raw subset test, uncached ones via per-target
        probes (cheaper than materializing their full bindings when the
        test fails).  One pass over the cache per conjunct.
        """
        if expression.is_top:
            return False
        self._sync()
        raw_targets = self._encode_targets(targets)
        if raw_targets is None:
            return False
        mask_space = self._mask_space
        result: Optional[Any] = None
        pending = None
        for se in expression.conjuncts:
            cached = self._cache.get(se, MISSING)
            if cached is MISSING:
                if pending is None:
                    pending = [se]
                else:
                    pending.append(se)
                continue
            if mask_space:
                if raw_targets & cached != raw_targets:
                    return False
            elif not raw_targets <= cached:
                return False
            result = cached if result is None else (result & cached)
        if pending is not None:
            for se in pending:
                for t in targets:
                    if not self.holds_for(se, t):
                        return False
                # every target satisfies the conjunct; now materialize it
                found = self._raw_bindings(se)
                result = found if result is None else (result & found)
        return result == raw_targets

    @property
    def cache_stats(self) -> dict:
        return {
            "hits": self._cache.hits,
            "misses": self._cache.misses,
            "hit_rate": self._cache.hit_rate,
            "evaluations": self.evaluations,
        }


# ----------------------------------------------------------------------
# generic conjunctive-query solver (used by the ILP opponent and as an
# oracle in tests)
# ----------------------------------------------------------------------


def _atom_cost(atom: Atom, kb: BaseKnowledgeBase, bound: Set[Variable]) -> int:
    """Estimated number of KB rows the atom yields given bound variables."""
    subject_free = isinstance(atom.subject, Variable) and atom.subject not in bound
    object_free = isinstance(atom.object, Variable) and atom.object not in bound
    if not subject_free and not object_free:
        return 1
    if not subject_free or not object_free:
        # one side fixed: fan-out bounded by predicate size but usually small
        return max(1, kb.predicate_fact_count(atom.predicate) // 16)
    return kb.predicate_fact_count(atom.predicate)


def solve(
    atoms: Sequence[Atom],
    kb: BaseKnowledgeBase,
    initial: Optional[Assignment] = None,
) -> Iterator[Assignment]:
    """Enumerate all assignments satisfying the conjunction of *atoms*.

    A straightforward backtracking join: at each step the cheapest
    not-yet-satisfied atom (given the variables bound so far) is expanded
    against the store.  Constants and already-bound variables restrict the
    scan; free variables get bound by it.
    """
    assignment: Assignment = dict(initial or {})
    remaining: List[Atom] = list(atoms)
    yield from _solve_rec(remaining, kb, assignment)


def _solve_rec(
    remaining: List[Atom], kb: BaseKnowledgeBase, assignment: Assignment
) -> Iterator[Assignment]:
    if not remaining:
        yield dict(assignment)
        return
    bound = set(assignment)
    index, atom = min(
        enumerate(remaining), key=lambda pair: _atom_cost(pair[1], kb, bound)
    )
    rest = remaining[:index] + remaining[index + 1 :]
    grounded = atom.substitute(assignment)
    subject_var = grounded.subject if isinstance(grounded.subject, Variable) else None
    object_var = grounded.object if isinstance(grounded.object, Variable) else None

    if subject_var is None and object_var is None:
        if grounded.object in kb.objects_view(grounded.subject, grounded.predicate):  # type: ignore[arg-type]
            yield from _solve_rec(rest, kb, assignment)
        return
    if subject_var is None:
        for o in kb.objects_view(grounded.subject, grounded.predicate):  # type: ignore[arg-type]
            assignment[object_var] = o  # type: ignore[index]
            yield from _solve_rec(rest, kb, assignment)
        assignment.pop(object_var, None)  # type: ignore[arg-type]
        return
    if object_var is None:
        for s in kb.subjects_view(grounded.predicate, grounded.object):  # type: ignore[arg-type]
            assignment[subject_var] = s
            yield from _solve_rec(rest, kb, assignment)
        assignment.pop(subject_var, None)
        return
    if subject_var is object_var:
        for s, o in kb.subject_object_pairs(grounded.predicate):
            if s == o:
                assignment[subject_var] = s
                yield from _solve_rec(rest, kb, assignment)
        assignment.pop(subject_var, None)
        return
    for s, o in kb.subject_object_pairs(grounded.predicate):
        assignment[subject_var] = s
        assignment[object_var] = o
        yield from _solve_rec(rest, kb, assignment)
    assignment.pop(subject_var, None)
    assignment.pop(object_var, None)


def exists(atoms: Sequence[Atom], kb: BaseKnowledgeBase, initial: Optional[Assignment] = None) -> bool:
    """True when the conjunction has at least one satisfying assignment."""
    return next(solve(atoms, kb, initial), None) is not None


def variable_bindings(
    atoms: Sequence[Atom], kb: BaseKnowledgeBase, variable: Variable
) -> FrozenSet[Term]:
    """All values *variable* takes across satisfying assignments."""
    return frozenset(a[variable] for a in solve(atoms, kb) if variable in a)
