"""Expression evaluation against a knowledge base.

The :class:`Matcher` answers the two questions REMI's search loop asks
(Alg. 1 line 1 and Alg. 2 line 5):

* what are the bindings of the root variable ``x`` for a (subgraph)
  expression — :meth:`Matcher.bindings` /
  :meth:`Matcher.expression_bindings`;
* is an expression a referring expression for a target set ``T`` —
  :meth:`Matcher.identifies` (bindings == T, §2.2.2).

Each Table 1 shape gets a dedicated evaluation plan built from the store's
atom-binding API; results are memoized in an LRU cache keyed on the
canonical expression (§3.5.2).  A generic backtracking conjunctive-query
solver (:func:`solve`) handles arbitrary atom lists — it is what the AMIE+
opponent uses, and doubles as a differential-testing oracle for the fast
paths.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, Iterator, List, Optional, Sequence, Set

from repro.expressions.atoms import Atom, Variable
from repro.expressions.expression import Expression
from repro.expressions.subgraph import Shape, SubgraphExpression
from repro.kb.cache import LRUCache
from repro.kb.store import KnowledgeBase
from repro.kb.terms import Term

Assignment = Dict[Variable, Term]


class Matcher:
    """Evaluates subgraph expressions and referring expressions on a KB."""

    def __init__(self, kb: KnowledgeBase, cache_size: int = 65536):
        self.kb = kb
        self._cache: LRUCache[SubgraphExpression, FrozenSet[Term]] = LRUCache(cache_size)
        self.evaluations = 0  # SE evaluations that actually hit the KB

    # ------------------------------------------------------------------
    # subgraph expressions
    # ------------------------------------------------------------------

    def bindings(self, se: SubgraphExpression) -> FrozenSet[Term]:
        """All bindings of the root variable for *se* (cached)."""
        return self._cache.get_or_compute(se, lambda: self._evaluate(se))

    def _evaluate(self, se: SubgraphExpression) -> FrozenSet[Term]:
        self.evaluations += 1
        kb = self.kb
        atoms = se.atoms
        if se.shape is Shape.SINGLE_ATOM:
            atom = atoms[0]
            return frozenset(kb.subjects(atom.predicate, atom.object))  # type: ignore[arg-type]
        if se.shape is Shape.PATH:
            hop, tail = atoms
            mids = kb.subjects(tail.predicate, tail.object)  # type: ignore[arg-type]
            return self._roots_via(hop.predicate, mids)
        if se.shape is Shape.PATH_STAR:
            hop, star1, star2 = atoms
            mids = kb.subjects(star1.predicate, star1.object)  # type: ignore[arg-type]
            if mids:
                mids = mids & kb.subjects(star2.predicate, star2.object)  # type: ignore[arg-type]
            return self._roots_via(hop.predicate, mids)
        if se.shape in (Shape.CLOSED_2, Shape.CLOSED_3):
            return self._closed_roots(se)
        raise AssertionError(f"unhandled shape {se.shape}")

    def _roots_via(self, predicate, mids: Iterable[Term]) -> FrozenSet[Term]:
        roots: Set[Term] = set()
        for mid in mids:
            roots |= self.kb.subjects(predicate, mid)
        return frozenset(roots)

    def _closed_roots(self, se: SubgraphExpression) -> FrozenSet[Term]:
        kb = self.kb
        predicates = se.predicates()
        # Drive the scan from the predicate with the fewest subjects.
        driver = min(predicates, key=lambda p: len(kb._pso.get(p, {})))
        rest = [p for p in predicates if p is not driver]
        roots: Set[Term] = set()
        for subject, objects in kb._pso.get(driver, {}).items():
            shared = set(objects)
            for p in rest:
                shared &= kb.objects(subject, p)
                if not shared:
                    break
            if shared:
                roots.add(subject)
        return frozenset(roots)

    def holds_for(self, se: SubgraphExpression, entity: Term) -> bool:
        """Does *entity* satisfy *se*?  Cheaper than computing all bindings."""
        cached = self._cache.get(se)
        if cached is not None:
            return entity in cached
        kb = self.kb
        atoms = se.atoms
        if se.shape is Shape.SINGLE_ATOM:
            atom = atoms[0]
            return atom.object in kb.objects(entity, atom.predicate)
        if se.shape is Shape.PATH:
            hop, tail = atoms
            return any(
                tail.object in kb.objects(mid, tail.predicate)
                for mid in kb.objects(entity, hop.predicate)
            )
        if se.shape is Shape.PATH_STAR:
            hop, star1, star2 = atoms
            return any(
                star1.object in kb.objects(mid, star1.predicate)
                and star2.object in kb.objects(mid, star2.predicate)
                for mid in kb.objects(entity, hop.predicate)
            )
        if se.shape in (Shape.CLOSED_2, Shape.CLOSED_3):
            predicates = se.predicates()
            shared = set(kb.objects(entity, predicates[0]))
            for p in predicates[1:]:
                shared &= kb.objects(entity, p)
                if not shared:
                    return False
            return bool(shared)
        raise AssertionError(f"unhandled shape {se.shape}")

    # ------------------------------------------------------------------
    # referring expressions
    # ------------------------------------------------------------------

    def expression_bindings(self, expression: Expression) -> FrozenSet[Term]:
        """Root bindings of a conjunction — the intersection over conjuncts.

        Conjuncts share only ``x`` (§2.2.2), so their ``y``'s are
        independent and intersection of per-conjunct root bindings is the
        exact semantics, no cross-conjunct join required.
        """
        if expression.is_top:
            raise ValueError("⊤ has unbounded bindings; test conjuncts instead")
        result: Optional[FrozenSet[Term]] = None
        # Evaluate cached conjuncts first, then by ascending cost estimate.
        for se in sorted(expression.conjuncts, key=lambda s: (s not in self._cache, s.size)):
            found = self.bindings(se)
            result = found if result is None else (result & found)
            if not result:
                return frozenset()
        assert result is not None
        return result

    def identifies(self, expression: Expression, targets: FrozenSet[Term]) -> bool:
        """The RE test of §2.2.2: bindings(expression) == targets exactly.

        Short-circuits as soon as one target misses one conjunct.
        """
        if expression.is_top:
            return False
        for se in expression.conjuncts:
            cached = self._cache.get(se)
            candidates = cached if cached is not None else None
            for t in targets:
                if candidates is not None:
                    if t not in candidates:
                        return False
                elif not self.holds_for(se, t):
                    return False
        return self.expression_bindings(expression) == targets

    @property
    def cache_stats(self) -> dict:
        return {
            "hits": self._cache.hits,
            "misses": self._cache.misses,
            "hit_rate": self._cache.hit_rate,
            "evaluations": self.evaluations,
        }


# ----------------------------------------------------------------------
# generic conjunctive-query solver (used by the ILP opponent and as an
# oracle in tests)
# ----------------------------------------------------------------------


def _atom_cost(atom: Atom, kb: KnowledgeBase, bound: Set[Variable]) -> int:
    """Estimated number of KB rows the atom yields given bound variables."""
    subject_free = isinstance(atom.subject, Variable) and atom.subject not in bound
    object_free = isinstance(atom.object, Variable) and atom.object not in bound
    if not subject_free and not object_free:
        return 1
    if not subject_free or not object_free:
        # one side fixed: fan-out bounded by predicate size but usually small
        return max(1, kb.predicate_fact_count(atom.predicate) // 16)
    return kb.predicate_fact_count(atom.predicate)


def solve(
    atoms: Sequence[Atom],
    kb: KnowledgeBase,
    initial: Optional[Assignment] = None,
) -> Iterator[Assignment]:
    """Enumerate all assignments satisfying the conjunction of *atoms*.

    A straightforward backtracking join: at each step the cheapest
    not-yet-satisfied atom (given the variables bound so far) is expanded
    against the store.  Constants and already-bound variables restrict the
    scan; free variables get bound by it.
    """
    assignment: Assignment = dict(initial or {})
    remaining: List[Atom] = list(atoms)
    yield from _solve_rec(remaining, kb, assignment)


def _solve_rec(
    remaining: List[Atom], kb: KnowledgeBase, assignment: Assignment
) -> Iterator[Assignment]:
    if not remaining:
        yield dict(assignment)
        return
    bound = set(assignment)
    index, atom = min(
        enumerate(remaining), key=lambda pair: _atom_cost(pair[1], kb, bound)
    )
    rest = remaining[:index] + remaining[index + 1 :]
    grounded = atom.substitute(assignment)
    subject_var = grounded.subject if isinstance(grounded.subject, Variable) else None
    object_var = grounded.object if isinstance(grounded.object, Variable) else None

    if subject_var is None and object_var is None:
        if grounded.object in kb.objects(grounded.subject, grounded.predicate):  # type: ignore[arg-type]
            yield from _solve_rec(rest, kb, assignment)
        return
    if subject_var is None:
        for o in kb.objects(grounded.subject, grounded.predicate):  # type: ignore[arg-type]
            assignment[object_var] = o  # type: ignore[index]
            yield from _solve_rec(rest, kb, assignment)
        assignment.pop(object_var, None)  # type: ignore[arg-type]
        return
    if object_var is None:
        for s in kb.subjects(grounded.predicate, grounded.object):  # type: ignore[arg-type]
            assignment[subject_var] = s
            yield from _solve_rec(rest, kb, assignment)
        assignment.pop(subject_var, None)
        return
    if subject_var is object_var:
        for s, o in kb.subject_object_pairs(grounded.predicate):
            if s == o:
                assignment[subject_var] = s
                yield from _solve_rec(rest, kb, assignment)
        assignment.pop(subject_var, None)
        return
    for s, o in kb.subject_object_pairs(grounded.predicate):
        assignment[subject_var] = s
        assignment[object_var] = o
        yield from _solve_rec(rest, kb, assignment)
    assignment.pop(subject_var, None)
    assignment.pop(object_var, None)


def exists(atoms: Sequence[Atom], kb: KnowledgeBase, initial: Optional[Assignment] = None) -> bool:
    """True when the conjunction has at least one satisfying assignment."""
    return next(solve(atoms, kb, initial), None) is not None


def variable_bindings(
    atoms: Sequence[Atom], kb: KnowledgeBase, variable: Variable
) -> FrozenSet[Term]:
    """All values *variable* takes across satisfying assignments."""
    return frozenset(a[variable] for a in solve(atoms, kb) if variable in a)
