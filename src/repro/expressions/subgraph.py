"""Subgraph expressions — the five shapes of Table 1.

========================  =============================================
Shape                     Form
========================  =============================================
``SINGLE_ATOM``           ``p0(x, I0)``
``PATH``                  ``p0(x, y) ∧ p1(y, I1)``
``PATH_STAR``             ``p0(x, y) ∧ p1(y, I1) ∧ p2(y, I2)``
``CLOSED_2``              ``p0(x, y) ∧ p1(x, y)``
``CLOSED_3``              ``p0(x, y) ∧ p1(x, y) ∧ p2(x, y)``
========================  =============================================

A subgraph expression is rooted at the root variable ``x`` and uses at most
one extra existentially quantified variable ``y`` (REMI's language bias,
§3.2).  Instances are immutable and canonicalized: the star atoms of
``PATH_STAR`` and the closing atoms of ``CLOSED_2``/``CLOSED_3`` are sorted
so that structurally equal expressions compare equal.
"""

from __future__ import annotations

import enum
from typing import Optional, Tuple

from repro.expressions.atoms import ROOT, Atom, Variable, Y
from repro.kb.terms import IRI, Term


class Shape(enum.Enum):
    """The admissible subgraph-expression shapes (Table 1)."""

    SINGLE_ATOM = "1 atom"
    PATH = "path"
    PATH_STAR = "path + star"
    CLOSED_2 = "2 closed atoms"
    CLOSED_3 = "3 closed atoms"


class SubgraphExpression:
    """An immutable, canonicalized conjunction of connected atoms rooted at ``x``.

    Use the class-method constructors (:meth:`single_atom`, :meth:`path`,
    :meth:`path_star`, :meth:`closed`) rather than ``__init__`` directly;
    they enforce the Table 1 grammar.
    """

    __slots__ = ("shape", "atoms", "_hash")

    def __init__(self, shape: Shape, atoms: Tuple[Atom, ...]):
        object.__setattr__(self, "shape", shape)
        object.__setattr__(self, "atoms", atoms)
        object.__setattr__(self, "_hash", hash((SubgraphExpression, shape, atoms)))

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("SubgraphExpression instances are immutable")

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------

    @classmethod
    def single_atom(cls, predicate: IRI, obj: Term) -> "SubgraphExpression":
        """``p0(x, I0)``"""
        if isinstance(obj, Variable):
            raise TypeError("single-atom expressions need a constant object")
        return cls(Shape.SINGLE_ATOM, (Atom(predicate, ROOT, obj),))

    @classmethod
    def path(cls, p0: IRI, p1: IRI, obj: Term) -> "SubgraphExpression":
        """``p0(x, y) ∧ p1(y, I1)``"""
        if isinstance(obj, Variable):
            raise TypeError("path expressions need a constant tail object")
        return cls(Shape.PATH, (Atom(p0, ROOT, Y), Atom(p1, Y, obj)))

    @classmethod
    def path_star(
        cls, p0: IRI, p1: IRI, obj1: Term, p2: IRI, obj2: Term
    ) -> "SubgraphExpression":
        """``p0(x, y) ∧ p1(y, I1) ∧ p2(y, I2)`` — star atoms canonically sorted."""
        star1, star2 = Atom(p1, Y, obj1), Atom(p2, Y, obj2)
        if star1 == star2:
            raise ValueError("path+star requires two distinct star atoms")
        if star2.sort_key() < star1.sort_key():
            star1, star2 = star2, star1
        return cls(Shape.PATH_STAR, (Atom(p0, ROOT, Y), star1, star2))

    @classmethod
    def closed(cls, *predicates: IRI) -> "SubgraphExpression":
        """``p0(x, y) ∧ p1(x, y) [∧ p2(x, y)]`` — two or three closed atoms."""
        if len(predicates) not in (2, 3):
            raise ValueError(f"closed expressions have 2 or 3 atoms, got {len(predicates)}")
        if len(set(predicates)) != len(predicates):
            raise ValueError("closed expressions need pairwise distinct predicates")
        atoms = tuple(sorted((Atom(p, ROOT, Y) for p in predicates), key=Atom.sort_key))
        shape = Shape.CLOSED_2 if len(atoms) == 2 else Shape.CLOSED_3
        return cls(shape, atoms)

    # ------------------------------------------------------------------
    # structure
    # ------------------------------------------------------------------

    @property
    def root_atom(self) -> Atom:
        """The atom that anchors the root variable ``x``."""
        return self.atoms[0]

    @property
    def size(self) -> int:
        """Number of atoms (1–3 in REMI's bias)."""
        return len(self.atoms)

    @property
    def uses_variable(self) -> bool:
        """True when the expression uses the existential variable ``y``."""
        return self.shape is not Shape.SINGLE_ATOM

    def predicates(self) -> Tuple[IRI, ...]:
        return tuple(a.predicate for a in self.atoms)

    def constants(self) -> Tuple[Term, ...]:
        """All constant arguments, in atom order."""
        out: list[Term] = []
        for atom in self.atoms:
            out.extend(atom.constants())
        return tuple(out)

    def tail_constant(self) -> Optional[Term]:
        """The bound object of a single atom or path, if any."""
        if self.shape is Shape.SINGLE_ATOM:
            return self.atoms[0].object  # type: ignore[return-value]
        if self.shape is Shape.PATH:
            return self.atoms[1].object  # type: ignore[return-value]
        return None

    def is_generalization_of(self, other: "SubgraphExpression") -> bool:
        """True when *other* contains all of this expression's atoms."""
        return set(self.atoms) <= set(other.atoms)

    # ------------------------------------------------------------------

    def sort_key(self) -> tuple:
        return tuple(a.sort_key() for a in self.atoms)

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, SubgraphExpression)
            and self.shape == other.shape
            and self.atoms == other.atoms
        )

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        return " ∧ ".join(repr(a) for a in self.atoms)
