"""REMI — mining intuitive referring expressions on RDF knowledge bases.

A from-scratch Python reproduction of *"REMI: Mining Intuitive Referring
Expressions on Knowledge Bases"* (Galárraga, Delaunay, Dessalles — EDBT
2020), including every substrate the paper depends on: an RDF triple store
with an HDT-like binary format, the estimated-Kolmogorov-complexity
machinery, the REMI / P-REMI search algorithms, an AMIE+-style ILP
opponent, FACES / LinkSUM-style entity summarizers, synthetic
DBpedia-/Wikidata-like KB generators and a simulated user-study harness.

Quickstart::

    from repro import KnowledgeBase, REMI, Triple, EX

    kb = KnowledgeBase()
    kb.add(Triple(EX.Paris, EX.capitalOf, EX.France))
    ...
    result = REMI(kb).mine([EX.Paris])
    print(result.expression, result.complexity)
"""

from repro.complexity import (
    ComplexityEstimator,
    FrequencyProminence,
    PageRankProminence,
    pagerank,
)
from repro.core import (
    LanguageBias,
    MinerConfig,
    MiningResult,
    PREMI,
    REMI,
    SearchStats,
)
from repro.expressions import (
    Atom,
    Expression,
    Matcher,
    Shape,
    SubgraphExpression,
    Variable,
    Verbalizer,
)
from repro.registry import ESTIMATORS, KB_BACKENDS, MINERS, PROMINENCE, Registry, RegistryError
from repro.service import (
    DescribeRequest,
    MineRequest,
    MiningServer,
    MiningService,
    Response,
    ServiceConfig,
    StatsRequest,
    UpdateRequest,
)
from repro.kb import (
    EX,
    IRI,
    BlankNode,
    KnowledgeBase,
    Literal,
    Namespace,
    RDF,
    RDFS,
    Triple,
    XSD,
    load_hdt,
    materialize_inverses,
    parse_ntriples,
    parse_ntriples_file,
    save_hdt,
    serialize_ntriples,
)

__version__ = "1.0.0"

__all__ = [
    "Atom",
    "BlankNode",
    "ComplexityEstimator",
    "DescribeRequest",
    "ESTIMATORS",
    "EX",
    "Expression",
    "FrequencyProminence",
    "IRI",
    "KB_BACKENDS",
    "KnowledgeBase",
    "MINERS",
    "MineRequest",
    "MiningServer",
    "MiningService",
    "PROMINENCE",
    "Registry",
    "RegistryError",
    "Response",
    "ServiceConfig",
    "StatsRequest",
    "UpdateRequest",
    "LanguageBias",
    "Literal",
    "Matcher",
    "MinerConfig",
    "MiningResult",
    "PREMI",
    "PageRankProminence",
    "RDF",
    "RDFS",
    "REMI",
    "SearchStats",
    "Shape",
    "SubgraphExpression",
    "Triple",
    "Variable",
    "Verbalizer",
    "XSD",
    "load_hdt",
    "materialize_inverses",
    "pagerank",
    "parse_ntriples",
    "parse_ntriples_file",
    "save_hdt",
    "serialize_ntriples",
    "__version__",
]
