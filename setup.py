"""Legacy setup shim.

The canonical metadata lives in ``pyproject.toml``.  This file exists so
that fully-offline environments without the ``wheel`` package can still do
an editable install via ``python setup.py develop`` (pip's PEP 517 editable
path requires ``bdist_wheel``).
"""

from setuptools import setup

setup()
